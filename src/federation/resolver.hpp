// resolver.hpp — live iterative resolution through the .loc fabric.
//
// The simulator's iterative resolver (src/resolver/) walks delegation
// chains over simulated links; this is its real-socket twin, built on
// the blocking transport client. Starting from one or more root
// endpoints it follows referrals — an authoritative server that does
// not own the deepest zone for a qname answers with the NS RRset of
// the cut plus glue — until an authoritative answer (positive,
// NODATA or NXDOMAIN) arrives, restarting through CNAMEs.
//
// Two paper-motivated twists over a textbook walker:
//
//   referral racing   every wave queries ALL candidate nameservers of
//                     the current zone concurrently from one poll()
//                     loop and takes the first well-formed answer —
//                     an AR client cares about tail latency, and edge
//                     nameservers are deliberately redundant.
//   referral cache    zone → nameserver endpoints, so the second
//                     query for a building does not start at the
//                     country root. best_for() picks the deepest
//                     cached ancestor of the qname.
//
// Glue carries addresses but no ports, so a fabric that does not own
// port 53 (every test and bench here) shares one port across distinct
// loopback addresses; `glue_port` is that shared port. sns-dig +trace
// defaults it to the port of the server it was aimed at.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "dns/message.hpp"
#include "transport/client.hpp"
#include "transport/socket.hpp"

namespace sns::federation {

struct ResolveOptions {
  transport::QueryOptions query;  // per-wave timeout/attempts/EDNS
  /// Delegation hops before giving up (loop/retry safety net).
  int max_referrals = 16;
  /// CNAME restarts before declaring a loop.
  int max_cname = 8;
  /// Port assumed for nameservers learned from A glue (see header).
  std::uint16_t glue_port = 53;
};

/// One step of the descent, reported to the trace callback as it
/// happens (sns-dig +trace renders these).
struct TraceHop {
  dns::Name zone;                             // zone the wave targeted
  std::vector<transport::Endpoint> servers;   // raced candidates
  transport::Endpoint winner;                 // first to answer
  bool from_cache = false;                    // candidates came from the referral cache
  bool referral = false;                      // answer was a referral (descent continues)
  dns::Message response;
  std::chrono::microseconds rtt{0};
};
using TraceFn = std::function<void(const TraceHop&)>;

/// zone → nameserver endpoints learned from referrals.
class ReferralCache {
 public:
  void insert(const dns::Name& zone, std::vector<transport::Endpoint> servers);

  struct Hit {
    dns::Name zone;
    std::vector<transport::Endpoint> servers;
  };
  /// Deepest cached zone that is an ancestor-or-self of `qname`.
  [[nodiscard]] std::optional<Hit> best_for(const dns::Name& qname) const;

  [[nodiscard]] std::size_t size() const noexcept { return by_zone_.size(); }
  void clear() { by_zone_.clear(); }

 private:
  std::map<dns::Name, std::vector<transport::Endpoint>> by_zone_;
};

struct IterativeAnswer {
  dns::Message response;  // final authoritative answer (CNAME chain prepended)
  int referrals = 0;      // delegation hops followed
  int waves = 0;          // query waves sent (≥ referrals + 1)
  int raced = 0;          // total candidate servers queried across waves
  bool started_from_cache = false;
};

/// Not thread-safe: one client (and its cache) per resolving thread.
class IterativeClient {
 public:
  explicit IterativeClient(std::vector<transport::Endpoint> roots, ResolveOptions options = {});

  util::Result<IterativeAnswer> resolve(const dns::Name& qname, dns::RRType qtype,
                                        const TraceFn& trace = nullptr);

  [[nodiscard]] ReferralCache& cache() noexcept { return cache_; }

 private:
  struct Wave {
    dns::Message response;
    transport::Endpoint winner;
    int raced = 0;
  };
  /// One racing wave: query every server concurrently over UDP, first
  /// well-formed id-matched answer wins; TC=1 retries the winner over
  /// TCP. Fails only when every server stayed silent for every attempt.
  util::Result<Wave> race(const std::vector<transport::Endpoint>& servers,
                          const dns::Message& query);
  /// Candidate endpoints for a referral's NS set: A glue first,
  /// glueless targets resolved recursively within `depth_budget`.
  std::vector<transport::Endpoint> referral_endpoints(const dns::Message& response,
                                                      int depth_budget);

  util::Result<IterativeAnswer> resolve_impl(const dns::Name& qname, dns::RRType qtype,
                                             const TraceFn& trace, int depth_budget);

  std::vector<transport::Endpoint> roots_;
  ResolveOptions options_;
  ReferralCache cache_;
  std::uint16_t next_id_;
};

/// The referral shape: no answers, NOERROR, non-authoritative, NS
/// records in the authority section. Exposed for tests.
[[nodiscard]] bool is_referral(const dns::Message& response);

}  // namespace sns::federation
