// gnss.hpp — simulated GNSS receiver (GPS/Galileo stand-in).
//
// Models the two properties §3.2 cares about: metre-scale accuracy in
// the open, and degradation/loss of fix indoors and in urban canyons.
#pragma once

#include "positioning/provider.hpp"
#include "util/rng.hpp"

namespace sns::positioning {

enum class SkyCondition { OpenSky, Urban, Indoor, DeepIndoor };

class GnssProvider final : public PositionProvider {
 public:
  GnssProvider(std::uint64_t seed, SkyCondition condition);

  std::optional<Fix> locate(const geo::GeoPoint& truth) override;
  [[nodiscard]] const char* name() const override { return "gnss"; }

  void set_condition(SkyCondition condition) { condition_ = condition; }
  [[nodiscard]] SkyCondition condition() const { return condition_; }

 private:
  util::Rng rng_;
  SkyCondition condition_;
};

}  // namespace sns::positioning
