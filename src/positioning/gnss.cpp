#include "positioning/gnss.hpp"

namespace sns::positioning {

namespace {
// Metres of 1-sigma horizontal error and probability of losing the fix
// entirely, by sky condition. Values are representative of consumer
// receivers (open sky ~3 m; urban multipath ~15 m; indoors usually no
// fix at all — the paper's motivation for IPS).
struct ConditionModel {
  double sigma_m;
  double no_fix_probability;
};

ConditionModel model_for(SkyCondition condition) {
  switch (condition) {
    case SkyCondition::OpenSky: return {3.0, 0.0};
    case SkyCondition::Urban: return {15.0, 0.05};
    case SkyCondition::Indoor: return {35.0, 0.60};
    case SkyCondition::DeepIndoor: return {50.0, 0.98};
  }
  return {50.0, 1.0};
}

constexpr double kDegPerMeterLat = 1.0 / 111320.0;
}  // namespace

GnssProvider::GnssProvider(std::uint64_t seed, SkyCondition condition)
    : rng_(seed), condition_(condition) {}

std::optional<Fix> GnssProvider::locate(const geo::GeoPoint& truth) {
  ConditionModel m = model_for(condition_);
  if (rng_.chance(m.no_fix_probability)) return std::nullopt;
  Fix fix;
  fix.position = truth;
  fix.position.latitude += rng_.next_gaussian(0.0, m.sigma_m * kDegPerMeterLat);
  fix.position.longitude += rng_.next_gaussian(0.0, m.sigma_m * kDegPerMeterLat);
  fix.position.altitude += rng_.next_gaussian(0.0, m.sigma_m * 1.5);
  fix.accuracy_m = m.sigma_m;
  return fix;
}

}  // namespace sns::positioning
