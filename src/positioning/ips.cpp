#include "positioning/ips.hpp"

#include <cmath>

namespace sns::positioning {

IpsProvider::IpsProvider(std::uint64_t seed, double range_noise_m, double beacon_range_m)
    : rng_(seed), range_noise_m_(range_noise_m), beacon_range_m_(beacon_range_m) {}

void IpsProvider::add_beacon(const geo::GeoPoint& position) { beacons_.push_back(position); }

std::optional<Fix> IpsProvider::locate(const geo::GeoPoint& truth) {
  // Gather noisy ranges to in-range beacons.
  struct Observation {
    geo::GeoPoint beacon;
    double range_m;
  };
  std::vector<Observation> observations;
  for (const auto& beacon : beacons_) {
    double true_range = geo::haversine_m(truth, beacon);
    if (true_range > beacon_range_m_) continue;
    observations.push_back(
        Observation{beacon, std::max(0.0, true_range + rng_.next_gaussian(0.0, range_noise_m_))});
  }
  if (observations.size() < 3) return std::nullopt;

  // Iterative least squares on a local tangent plane (metres), seeded
  // at the beacon centroid — a faithful miniature of real IPS solvers.
  constexpr double kMetersPerDegLat = 111320.0;
  double lat0 = 0.0, lon0 = 0.0;
  for (const auto& obs : observations) {
    lat0 += obs.beacon.latitude;
    lon0 += obs.beacon.longitude;
  }
  lat0 /= static_cast<double>(observations.size());
  lon0 /= static_cast<double>(observations.size());
  double cos_lat = std::cos(lat0 * 3.14159265358979323846 / 180.0);

  auto to_xy = [&](const geo::GeoPoint& p, double& x, double& y) {
    x = (p.longitude - lon0) * kMetersPerDegLat * cos_lat;
    y = (p.latitude - lat0) * kMetersPerDegLat;
  };

  double ex = 0.0, ey = 0.0;  // estimate, metres from origin
  for (int iter = 0; iter < 12; ++iter) {
    double gx = 0.0, gy = 0.0;
    for (const auto& obs : observations) {
      double bx, by;
      to_xy(obs.beacon, bx, by);
      double dx = ex - bx, dy = ey - by;
      double dist = std::sqrt(dx * dx + dy * dy);
      if (dist < 1e-6) continue;
      double residual = dist - obs.range_m;
      gx += residual * dx / dist;
      gy += residual * dy / dist;
    }
    double n = static_cast<double>(observations.size());
    ex -= gx / n;
    ey -= gy / n;
  }

  Fix fix;
  fix.position.latitude = lat0 + ey / kMetersPerDegLat;
  fix.position.longitude = lon0 + ex / (kMetersPerDegLat * cos_lat);
  fix.position.altitude = truth.altitude;
  fix.accuracy_m = range_noise_m_ * 2.0;
  return fix;
}

}  // namespace sns::positioning
