// provider.hpp — location-aware technology abstraction (§3.2).
//
// "devices would need to have access to some form of location-aware
// technology. This could be as simple as a user manually registering a
// device's location … or GNSS … An alternative is Indoor positioning
// systems (IPS)." Each provider produces a position fix with an
// accuracy estimate; the SNS core turns fixes into LOC records and
// geodetic index entries.
#pragma once

#include <optional>

#include "geo/geometry.hpp"

namespace sns::positioning {

/// One position estimate.
struct Fix {
  geo::GeoPoint position;
  double accuracy_m = 0.0;  // 1-sigma horizontal error estimate
};

class PositionProvider {
 public:
  virtual ~PositionProvider() = default;

  /// Produce a fix for a device whose ground-truth position is `truth`.
  /// nullopt = no fix available (e.g. GNSS deep indoors).
  virtual std::optional<Fix> locate(const geo::GeoPoint& truth) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Manual registration: the installer types in the position; perfect
/// but static (the paper's simplest option).
class ManualProvider final : public PositionProvider {
 public:
  std::optional<Fix> locate(const geo::GeoPoint& truth) override {
    return Fix{truth, 0.5};
  }
  [[nodiscard]] const char* name() const override { return "manual"; }
};

}  // namespace sns::positioning
