// ips.hpp — simulated indoor positioning system.
//
// Modelled on beacon trilateration (the Active BAT lineage the paper
// cites [22]): fixed beacons at known positions measure noisy ranges to
// the device; a least-squares-ish estimate is produced when >= 3
// beacons are in range. Sub-metre accuracy indoors, no coverage outside
// the beacon field — the complement of GNSS.
#pragma once

#include <vector>

#include "positioning/provider.hpp"
#include "util/rng.hpp"

namespace sns::positioning {

class IpsProvider final : public PositionProvider {
 public:
  /// `range_noise_m`: 1-sigma ranging error; `beacon_range_m`: maximum
  /// usable beacon distance.
  IpsProvider(std::uint64_t seed, double range_noise_m = 0.15, double beacon_range_m = 25.0);

  void add_beacon(const geo::GeoPoint& position);

  std::optional<Fix> locate(const geo::GeoPoint& truth) override;
  [[nodiscard]] const char* name() const override { return "ips"; }

  [[nodiscard]] std::size_t beacon_count() const noexcept { return beacons_.size(); }

 private:
  util::Rng rng_;
  double range_noise_m_;
  double beacon_range_m_;
  std::vector<geo::GeoPoint> beacons_;
};

}  // namespace sns::positioning
