#include "resolver/query_stats.hpp"

#include "obs/json.hpp"

namespace sns::resolver {

std::string QueryStats::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.field("rcode", dns::to_string(rcode));
  w.field("latency_us", static_cast<std::int64_t>(latency.count()));
  w.field("queries_sent", static_cast<std::int64_t>(queries_sent));
  w.field("from_cache", from_cache);
  w.field("referrals_followed", static_cast<std::int64_t>(referrals_followed));
  w.field("fanout_max", static_cast<std::int64_t>(fanout_max));
  w.end_object();
  return w.take();
}

}  // namespace sns::resolver
