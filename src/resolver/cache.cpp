#include "resolver/cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace sns::resolver {

void DnsCache::put(const RRset& records, net::TimePoint now) {
  if (records.empty()) return;
  put_answer(records.front().name, records.front().type, records, now);
}

void DnsCache::put_answer(const Name& qname, RRType qtype, const RRset& records,
                          net::TimePoint now) {
  if (records.empty()) return;
  std::uint32_t min_ttl = records.front().ttl;
  for (const auto& rr : records) min_ttl = std::min(min_ttl, rr.ttl);
  Key key{qname, static_cast<std::uint16_t>(qtype)};

  auto existing = positive_.find(key);
  if (existing != positive_.end()) lru_.erase(existing->second.lru);
  lru_.push_front(key);
  positive_[key] = PositiveEntry{records, now, now + std::chrono::seconds(min_ttl), lru_.begin()};
  if (metrics_ != nullptr) metrics_->counter("resolver.cache.insert").add();
  evict_if_needed();
}

void DnsCache::put_negative(const Name& name, RRType type, dns::Rcode rcode, std::uint32_t ttl,
                            net::TimePoint now) {
  Key key{name, static_cast<std::uint16_t>(type)};
  negative_[key] = NegativeEntry{rcode, now + std::chrono::seconds(ttl)};
}

std::optional<RRset> DnsCache::get(const Name& name, RRType type, net::TimePoint now) {
  Key key{name, static_cast<std::uint16_t>(type)};
  auto it = positive_.find(key);
  if (it == positive_.end() || it->second.expires <= now) {
    if (it != positive_.end()) {
      lru_.erase(it->second.lru);
      positive_.erase(it);
    }
    ++misses_;
    if (metrics_ != nullptr) metrics_->counter("resolver.cache.miss").add();
    return std::nullopt;
  }
  ++hits_;
  if (metrics_ != nullptr) metrics_->counter("resolver.cache.hit").add();
  touch(it->second, key);
  // Serve with decremented TTLs (RFC 1035 §7.3 behaviour).
  auto age = std::chrono::duration_cast<std::chrono::seconds>(now - it->second.inserted).count();
  RRset out = it->second.records;
  for (auto& rr : out)
    rr.ttl -= std::min<std::uint32_t>(rr.ttl, static_cast<std::uint32_t>(age));
  return out;
}

std::optional<dns::Rcode> DnsCache::get_negative(const Name& name, RRType type,
                                                 net::TimePoint now) {
  Key key{name, static_cast<std::uint16_t>(type)};
  auto it = negative_.find(key);
  if (it == negative_.end()) return std::nullopt;
  if (it->second.expires <= now) {
    negative_.erase(it);
    return std::nullopt;
  }
  if (metrics_ != nullptr) metrics_->counter("resolver.cache.negative_hit").add();
  return it->second.rcode;
}

void DnsCache::clear() {
  positive_.clear();
  negative_.clear();
  lru_.clear();
}

void DnsCache::touch(PositiveEntry& entry, const Key& key) {
  lru_.erase(entry.lru);
  lru_.push_front(key);
  entry.lru = lru_.begin();
}

void DnsCache::evict_if_needed() {
  while (positive_.size() > capacity_) {
    positive_.erase(lru_.back());
    lru_.pop_back();
    if (metrics_ != nullptr) metrics_->counter("resolver.cache.evict").add();
  }
}

}  // namespace sns::resolver
