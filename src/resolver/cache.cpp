#include "resolver/cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace sns::resolver {

void DnsCache::bump_counter(const char* name) {
  if (metrics_ != nullptr) metrics_->counter(name).add();
}

void DnsCache::put(const RRset& records, net::TimePoint now) {
  if (records.empty()) return;
  put_answer(records.front().name, records.front().type, records, now);
}

void DnsCache::put_answer(const Name& qname, RRType qtype, const RRset& records,
                          net::TimePoint now) {
  if (records.empty()) return;
  std::uint32_t min_ttl = records.front().ttl;
  for (const auto& rr : records) min_ttl = std::min(min_ttl, rr.ttl);
  Key key{qname, static_cast<std::uint16_t>(qtype)};

  auto existing = positive_.find(key);
  if (existing != positive_.end()) lru_.erase(existing->second.lru);
  lru_.push_front(key);
  positive_[key] = PositiveEntry{records, now, now + std::chrono::seconds(min_ttl), lru_.begin()};
  bump_counter("resolver.cache.insert");
  while (positive_.size() > capacity_) {
    positive_.erase(lru_.back());
    lru_.pop_back();
    bump_counter("resolver.cache.evict");
  }
}

void DnsCache::put_negative(const Name& name, RRType type, dns::Rcode rcode, std::uint32_t ttl,
                            net::TimePoint now) {
  Key key{name, static_cast<std::uint16_t>(type)};
  auto existing = negative_.find(key);
  if (existing != negative_.end()) neg_lru_.erase(existing->second.lru);
  neg_lru_.push_front(key);
  negative_[key] = NegativeEntry{rcode, now + std::chrono::seconds(ttl), neg_lru_.begin()};
  bump_counter("resolver.cache.negative_insert");
  while (negative_.size() > capacity_) {
    negative_.erase(neg_lru_.back());
    neg_lru_.pop_back();
    bump_counter("resolver.cache.negative_evict");
  }
}

std::optional<RRset> DnsCache::get(const Name& name, RRType type, net::TimePoint now) {
  Key key{name, static_cast<std::uint16_t>(type)};
  auto it = positive_.find(key);
  if (it == positive_.end() || it->second.expires <= now) {
    if (it != positive_.end()) {
      lru_.erase(it->second.lru);
      positive_.erase(it);
    }
    ++misses_;
    bump_counter("resolver.cache.miss");
    return std::nullopt;
  }
  ++hits_;
  bump_counter("resolver.cache.hit");
  lru_.erase(it->second.lru);
  lru_.push_front(key);
  it->second.lru = lru_.begin();
  // Serve with decremented TTLs (RFC 1035 §7.3 behaviour).
  auto age = std::chrono::duration_cast<std::chrono::seconds>(now - it->second.inserted).count();
  RRset out = it->second.records;
  for (auto& rr : out)
    rr.ttl -= std::min<std::uint32_t>(rr.ttl, static_cast<std::uint32_t>(age));
  return out;
}

std::optional<dns::Rcode> DnsCache::get_negative(const Name& name, RRType type,
                                                 net::TimePoint now) {
  Key key{name, static_cast<std::uint16_t>(type)};
  auto it = negative_.find(key);
  if (it == negative_.end()) return std::nullopt;
  if (it->second.expires <= now) {
    neg_lru_.erase(it->second.lru);
    negative_.erase(it);
    return std::nullopt;
  }
  bump_counter("resolver.cache.negative_hit");
  neg_lru_.erase(it->second.lru);
  neg_lru_.push_front(key);
  it->second.lru = neg_lru_.begin();
  return it->second.rcode;
}

void DnsCache::clear() {
  positive_.clear();
  negative_.clear();
  lru_.clear();
  neg_lru_.clear();
}

}  // namespace sns::resolver
