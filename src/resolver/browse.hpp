// browse.hpp — DNS-SD service browsing, unicast and multicast.
//
// Two ways to answer "what services are in this room?":
//   * browse_unicast: one query to the spatial domain's edge nameserver
//     (the SNS way — fast, works across rooms);
//   * browse_mdns: multicast query + listening window (the legacy
//     layered way the paper's §1 contrasts against).
// Bench E6 compares the two on identical topologies.
#pragma once

#include <string>
#include <vector>

#include "dns/message.hpp"
#include "net/network.hpp"
#include "resolver/stub.hpp"

namespace sns::resolver {

/// One discovered service instance.
struct DiscoveredService {
  dns::Name instance;
  dns::Name host;
  std::uint16_t port = 0;
  std::vector<std::string> txt;
  net::Duration discovered_after{0};
};

/// Result of one browse sweep. Accounting lives in `stats`, the shape
/// shared with Resolution and IterativeResult (`stats.latency` is the
/// end-to-end wall time of the whole sweep).
struct BrowseResult {
  QueryStats stats;
  std::vector<DiscoveredService> services;
};

/// Unicast DNS-SD against a spatial zone: PTR enumeration then SRV/TXT
/// for each instance, all through `stub`'s configured edge server.
util::Result<BrowseResult> browse_unicast(StubResolver& stub, const std::string& service_type,
                                          const dns::Name& domain);

/// Multicast mDNS browse: PTR query to the mDNS group, wait a listening
/// window, then per-instance SRV/TXT queries (again multicast).
/// Fails (Result error) when the service-type name cannot be formed in
/// `domain`; an empty browse window is a success with zero services.
util::Result<BrowseResult> browse_mdns(net::Network& network, net::NodeId self,
                                       const std::string& service_type, const dns::Name& domain,
                                       net::Duration window = net::ms(1000));

}  // namespace sns::resolver
