#include "resolver/iterative.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace sns::resolver {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;
using util::fail;
using util::Result;

void ServerDirectory::register_server(const Name& ns_name, net::Ipv4Addr address,
                                      net::NodeId node) {
  by_name_[ns_name] = node;
  by_address_[address.as_u32()] = node;
}

std::optional<net::NodeId> ServerDirectory::by_name(const Name& ns_name) const {
  auto it = by_name_.find(ns_name);
  return it == by_name_.end() ? std::nullopt : std::optional(it->second);
}

std::optional<net::NodeId> ServerDirectory::by_address(net::Ipv4Addr address) const {
  auto it = by_address_.find(address.as_u32());
  return it == by_address_.end() ? std::nullopt : std::optional(it->second);
}

IterativeResolver::IterativeResolver(net::Network& network, net::NodeId self,
                                     const ServerDirectory& directory, net::NodeId root_server)
    : network_(network), self_(self), directory_(directory), root_server_(root_server) {}

Result<Message> IterativeResolver::query_server(net::NodeId server, const Name& name, RRType type,
                                                QueryStats& stats) {
  Message query = dns::make_query(next_id_++, name, type, /*recursion_desired=*/false);
  auto wire = query.encode();
  ++stats.queries_sent;
  if (metrics_ != nullptr) metrics_->counter("resolver.iterative.queries").add();
  auto result = network_.exchange(self_, server, std::span(wire));
  if (metrics_ != nullptr) {
    // ExchangeResult.attempts used to be dropped here: surface the
    // per-exchange retry/timeout outcome the same way the stub does.
    if (!result.ok())
      metrics_->counter("resolver.exchange.timeout").add();
    else if (result.value().attempts > 1)
      metrics_->counter("resolver.exchange.retry")
          .add(static_cast<std::uint64_t>(result.value().attempts - 1));
  }
  if (!result.ok()) return result.error();
  auto response = Message::decode(std::span(result.value().response));
  if (!response.ok()) return fail("iterative: malformed response");
  return response;
}

Result<IterativeResult> IterativeResolver::resolve(const Name& name, RRType type) {
  IterativeResult out;
  Name qname = name;
  std::vector<net::NodeId> candidates{root_server_};

  obs::ScopedSpan root_span(tracer_, "resolver.iterative");
  root_span.annotate("name", name.to_string());
  root_span.annotate("type", dns::to_string(type));

  for (int guard = 0; guard < 32; ++guard) {
    if (cache_ != nullptr) {
      obs::ScopedSpan probe(tracer_, "resolver.cache.probe");
      probe.annotate("name", qname.to_string());
      if (auto cached = cache_->get(qname, type, network_.clock().now())) {
        probe.annotate("outcome", "hit");
        out.records.insert(out.records.end(), cached->begin(), cached->end());
        out.stats.rcode = Rcode::NoError;
        out.stats.from_cache = out.stats.queries_sent == 0;
        return out;
      }
      if (auto negative = cache_->get_negative(qname, type, network_.clock().now())) {
        probe.annotate("outcome", "negative_hit");
        out.stats.rcode = *negative;
        out.stats.from_cache = out.stats.queries_sent == 0;
        return out;
      }
      probe.annotate("outcome", "miss");
    }

    out.stats.fanout_max = std::max(out.stats.fanout_max, static_cast<int>(candidates.size()));

    // Query every candidate; concurrent pursuit is charged max() RTT in
    // out.stats.latency (queries overlap in real time). One
    // `resolver.hop` span per descent level; when border ambiguity
    // fans out, each concurrently pursued server gets its own
    // `resolver.branch` child span.
    obs::ScopedSpan hop_span(tracer_, "resolver.hop");
    hop_span.annotate("qname", qname.to_string());
    hop_span.annotate("fanout", static_cast<std::int64_t>(candidates.size()));
    std::optional<Message> chosen;
    std::vector<Message> referrals;
    net::Duration hop_latency{0};
    for (net::NodeId server : candidates) {
      obs::ScopedSpan branch_span(tracer_, "resolver.branch");
      branch_span.annotate("server", network_.node_name(server));
      net::TimePoint t0 = network_.clock().now();
      auto response = query_server(server, qname, type, out.stats);
      net::Duration branch_latency = network_.clock().now() - t0;
      hop_latency = std::max(hop_latency, branch_latency);
      if (!response.ok()) {
        branch_span.annotate("outcome", "no_response");
        continue;
      }
      Message& msg = response.value();
      branch_span.annotate("rcode", dns::to_string(msg.header.rcode));
      // Terminal: an answer, any authoritative error (NXDOMAIN, REFUSED
      // from a presence rule, ...), or an authoritative NODATA.
      if (!msg.answers.empty() || msg.header.rcode != Rcode::NoError ||
          (msg.header.aa && msg.header.rcode == Rcode::NoError)) {
        if (!chosen.has_value()) chosen = std::move(msg);
      } else if (!msg.authorities.empty()) {
        referrals.push_back(std::move(msg));
      }
    }
    out.stats.latency += hop_latency;
    if (metrics_ != nullptr)
      metrics_->histogram("resolver.hop.latency_us")
          .record(static_cast<std::uint64_t>(hop_latency.count()));

    if (chosen.has_value()) {
      const Message& msg = *chosen;
      if (!msg.answers.empty()) {
        // CNAME restart?
        bool has_qtype = false;
        const dns::CnameData* cname = nullptr;
        for (const auto& rr : msg.answers) {
          if (rr.type == type) has_qtype = true;
          if (rr.type == RRType::CNAME && rr.name == qname)
            cname = std::get_if<dns::CnameData>(&rr.rdata);
        }
        out.records.insert(out.records.end(), msg.answers.begin(), msg.answers.end());
        if (cache_ != nullptr) cache_->put(msg.answers, network_.clock().now());
        if (!has_qtype && cname != nullptr && type != RRType::CNAME && type != RRType::ANY) {
          qname = cname->target;
          candidates = {root_server_};
          if (metrics_ != nullptr) metrics_->counter("resolver.iterative.cname_restarts").add();
          obs::trace_event(tracer_, "resolver.cname_restart");
          continue;
        }
        out.stats.rcode = Rcode::NoError;
        root_span.annotate("rcode", dns::to_string(out.stats.rcode));
        if (metrics_ != nullptr)
          metrics_->histogram("resolver.iterative.latency_us")
              .record(static_cast<std::uint64_t>(out.stats.latency.count()));
        return out;
      }
      // Authoritative NXDOMAIN or NODATA.
      out.stats.rcode = msg.header.rcode;
      if (cache_ != nullptr) {
        std::uint32_t ttl = 60;
        for (const auto& rr : msg.authorities)
          if (const auto* soa = std::get_if<dns::SoaData>(&rr.rdata))
            ttl = std::min(rr.ttl, soa->minimum);
        cache_->put_negative(qname, type, msg.header.rcode, ttl, network_.clock().now());
      }
      root_span.annotate("rcode", dns::to_string(out.stats.rcode));
      if (metrics_ != nullptr)
        metrics_->histogram("resolver.iterative.latency_us")
            .record(static_cast<std::uint64_t>(out.stats.latency.count()));
      return out;
    }

    if (referrals.empty()) return fail("iterative: no usable response for " + qname.to_string());

    // Collect next-hop servers from every referral (border ambiguity:
    // several zones may claim the point; pursue all of them).
    ++out.stats.referrals_followed;
    if (metrics_ != nullptr) metrics_->counter("resolver.iterative.referrals").add();
    obs::trace_event(tracer_, "resolver.referral");
    std::vector<net::NodeId> next;
    for (const Message& msg : referrals) {
      for (const auto& rr : msg.authorities) {
        const auto* ns = std::get_if<dns::NsData>(&rr.rdata);
        if (ns == nullptr) continue;
        std::optional<net::NodeId> node;
        // Prefer glue from the additional section.
        for (const auto& glue : msg.additionals) {
          if (!(glue.name == ns->nameserver)) continue;
          if (const auto* a = std::get_if<dns::AData>(&glue.rdata))
            node = directory_.by_address(a->address);
        }
        if (!node.has_value()) node = directory_.by_name(ns->nameserver);
        if (node.has_value() && std::find(next.begin(), next.end(), *node) == next.end())
          next.push_back(*node);
      }
    }
    if (next.empty()) return fail("iterative: lame delegation for " + qname.to_string());
    candidates = std::move(next);
  }
  return fail("iterative: referral loop resolving " + name.to_string());
}

}  // namespace sns::resolver
