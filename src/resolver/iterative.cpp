#include "resolver/iterative.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace sns::resolver {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;
using util::fail;
using util::Result;

void ServerDirectory::register_server(const Name& ns_name, net::Ipv4Addr address,
                                      net::NodeId node) {
  by_name_[ns_name] = node;
  by_address_[address.as_u32()] = node;
}

std::optional<net::NodeId> ServerDirectory::by_name(const Name& ns_name) const {
  auto it = by_name_.find(ns_name);
  return it == by_name_.end() ? std::nullopt : std::optional(it->second);
}

std::optional<net::NodeId> ServerDirectory::by_address(net::Ipv4Addr address) const {
  auto it = by_address_.find(address.as_u32());
  return it == by_address_.end() ? std::nullopt : std::optional(it->second);
}

IterativeResolver::IterativeResolver(net::Network& network, net::NodeId self,
                                     const ServerDirectory& directory, net::NodeId root_server)
    : network_(network), self_(self), directory_(directory), root_server_(root_server) {}

Result<Message> IterativeResolver::query_server(net::NodeId server, const Name& name, RRType type,
                                                IterativeResult& stats) {
  Message query = dns::make_query(next_id_++, name, type, /*recursion_desired=*/false);
  auto wire = query.encode();
  ++stats.queries_sent;
  auto result = network_.exchange(self_, server, std::span(wire));
  if (!result.ok()) return result.error();
  auto response = Message::decode(std::span(result.value().response));
  if (!response.ok()) return fail("iterative: malformed response");
  return response;
}

Result<IterativeResult> IterativeResolver::resolve(const Name& name, RRType type) {
  IterativeResult out;
  Name qname = name;
  std::vector<net::NodeId> candidates{root_server_};

  for (int guard = 0; guard < 32; ++guard) {
    if (cache_ != nullptr) {
      if (auto cached = cache_->get(qname, type, network_.clock().now())) {
        out.records.insert(out.records.end(), cached->begin(), cached->end());
        out.rcode = Rcode::NoError;
        return out;
      }
      if (auto negative = cache_->get_negative(qname, type, network_.clock().now())) {
        out.rcode = *negative;
        return out;
      }
    }

    out.fanout_max = std::max(out.fanout_max, static_cast<int>(candidates.size()));

    // Query every candidate; concurrent pursuit is charged max() RTT in
    // out.latency (queries overlap in real time).
    std::optional<Message> chosen;
    std::vector<Message> referrals;
    net::Duration hop_latency{0};
    for (net::NodeId server : candidates) {
      net::TimePoint t0 = network_.clock().now();
      auto response = query_server(server, qname, type, out);
      hop_latency = std::max(hop_latency, network_.clock().now() - t0);
      if (!response.ok()) continue;
      Message& msg = response.value();
      // Terminal: an answer, any authoritative error (NXDOMAIN, REFUSED
      // from a presence rule, ...), or an authoritative NODATA.
      if (!msg.answers.empty() || msg.header.rcode != Rcode::NoError ||
          (msg.header.aa && msg.header.rcode == Rcode::NoError)) {
        if (!chosen.has_value()) chosen = std::move(msg);
      } else if (!msg.authorities.empty()) {
        referrals.push_back(std::move(msg));
      }
    }
    out.latency += hop_latency;

    if (chosen.has_value()) {
      const Message& msg = *chosen;
      if (!msg.answers.empty()) {
        // CNAME restart?
        bool has_qtype = false;
        const dns::CnameData* cname = nullptr;
        for (const auto& rr : msg.answers) {
          if (rr.type == type) has_qtype = true;
          if (rr.type == RRType::CNAME && rr.name == qname)
            cname = std::get_if<dns::CnameData>(&rr.rdata);
        }
        out.records.insert(out.records.end(), msg.answers.begin(), msg.answers.end());
        if (cache_ != nullptr) cache_->put(msg.answers, network_.clock().now());
        if (!has_qtype && cname != nullptr && type != RRType::CNAME && type != RRType::ANY) {
          qname = cname->target;
          candidates = {root_server_};
          continue;
        }
        out.rcode = Rcode::NoError;
        return out;
      }
      // Authoritative NXDOMAIN or NODATA.
      out.rcode = msg.header.rcode;
      if (cache_ != nullptr) {
        std::uint32_t ttl = 60;
        for (const auto& rr : msg.authorities)
          if (const auto* soa = std::get_if<dns::SoaData>(&rr.rdata))
            ttl = std::min(rr.ttl, soa->minimum);
        cache_->put_negative(qname, type, msg.header.rcode, ttl, network_.clock().now());
      }
      return out;
    }

    if (referrals.empty()) return fail("iterative: no usable response for " + qname.to_string());

    // Collect next-hop servers from every referral (border ambiguity:
    // several zones may claim the point; pursue all of them).
    ++out.referrals_followed;
    std::vector<net::NodeId> next;
    for (const Message& msg : referrals) {
      for (const auto& rr : msg.authorities) {
        const auto* ns = std::get_if<dns::NsData>(&rr.rdata);
        if (ns == nullptr) continue;
        std::optional<net::NodeId> node;
        // Prefer glue from the additional section.
        for (const auto& glue : msg.additionals) {
          if (!(glue.name == ns->nameserver)) continue;
          if (const auto* a = std::get_if<dns::AData>(&glue.rdata))
            node = directory_.by_address(a->address);
        }
        if (!node.has_value()) node = directory_.by_name(ns->nameserver);
        if (node.has_value() && std::find(next.begin(), next.end(), *node) == next.end())
          next.push_back(*node);
      }
    }
    if (next.empty()) return fail("iterative: lame delegation for " + qname.to_string());
    candidates = std::move(next);
  }
  return fail("iterative: referral loop resolving " + name.to_string());
}

}  // namespace sns::resolver
