// query_stats.hpp — the one shape every resolver front-end reports.
//
// Resolution (stub), IterativeResult (iterative) and BrowseResult
// (DNS-SD browse) used to carry three divergent ad-hoc accounting
// structs; the obs layer and the benches now consume a single
// QueryStats embedded in all three. Field semantics are identical
// across front-ends:
//   rcode               final DNS response code of the operation
//   latency             virtual time consumed end to end
//   queries_sent        upstream queries issued (0 on a pure cache hit)
//   from_cache          answered entirely from a local DnsCache
//   referrals_followed  delegation hops chased (0 for stub/browse)
//   fanout_max          max concurrent referral pursuit (border case; 1
//                       when no branching happened)
#pragma once

#include <string>

#include "dns/type.hpp"
#include "net/sim.hpp"

namespace sns::resolver {

struct QueryStats {
  dns::Rcode rcode = dns::Rcode::ServFail;
  net::Duration latency{0};
  int queries_sent = 0;
  bool from_cache = false;
  int referrals_followed = 0;
  int fanout_max = 1;

  /// Machine-readable form for bench trajectories:
  /// {"rcode":"NOERROR","latency_us":412,"queries_sent":8,...}
  [[nodiscard]] std::string to_json() const;
};

}  // namespace sns::resolver
