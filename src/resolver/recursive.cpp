#include "resolver/recursive.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace sns::resolver {

using dns::Message;
using dns::Rcode;

RecursiveResolver::RecursiveResolver(net::Network& network, net::NodeId node,
                                     const ServerDirectory& directory,
                                     net::NodeId root_server, std::size_t cache_capacity)
    : network_(network),
      node_(node),
      iterative_(network, node, directory, root_server),
      cache_(cache_capacity) {
  iterative_.set_cache(&cache_);
}

Message RecursiveResolver::handle(const Message& query) {
  ++queries_served_;
  if (metrics_ != nullptr) metrics_->counter("resolver.recursive.queries").add();
  obs::ScopedSpan span(tracer_, "recursive.handle");
  if (query.questions.size() != 1) return dns::make_response(query, Rcode::FormErr, false);
  if (!query.header.rd) {
    // We are not authoritative for anything; without RD there is
    // nothing we can answer from.
    Message refused = dns::make_response(query, Rcode::Refused, false);
    refused.header.ra = true;
    return refused;
  }
  const auto& question = query.questions.front();
  span.annotate("name", question.name.to_string());
  span.annotate("type", dns::to_string(question.type));

  auto result = iterative_.resolve(question.name, question.type);
  Message response = dns::make_response(
      query, result.ok() ? result.value().stats.rcode : Rcode::ServFail, /*authoritative=*/false);
  response.header.ra = true;
  if (result.ok()) {
    response.answers = std::move(result).value().records;
  } else {
    util::log_debug("recursive", "resolution failed: ", result.error().message);
  }
  span.annotate("rcode", dns::to_string(response.header.rcode));
  return response;
}

void RecursiveResolver::bind() {
  network_.set_handler(node_, [this](std::span<const std::uint8_t> payload,
                                     net::NodeId) -> std::optional<util::Bytes> {
    auto query = Message::decode(payload);
    if (!query.ok()) return std::nullopt;
    Message response = handle(query.value());
    return dns::encode_for_transport(query.value(), std::move(response));
  });
}

}  // namespace sns::resolver
