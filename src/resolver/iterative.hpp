// iterative.hpp — full iterative resolver (referral chasing).
//
// Implements the global side of the paper's resolution story: starting
// from the root, follow delegations down the spatial hierarchy
// (".loc → .usa → … → oval-office", §3.2), restart on CNAMEs, cache
// aggressively, and — for geodetic border ambiguity — pursue *multiple*
// referrals concurrently when the authority section points at several
// spatial domains ("Returning a set of RRs in the DNS authority section
// could be used to point the resolver to multiple spatial domains,
// which it can then pursue concurrently", §3.2).
//
// The simulator is single-threaded; "concurrently" means the resolver
// queries all candidate servers and is charged only the *maximum* of
// their RTTs (they overlap in real time), which is what the latency
// benches need.
#pragma once

#include <unordered_map>

#include "dns/message.hpp"
#include "net/network.hpp"
#include "resolver/cache.hpp"
#include "resolver/query_stats.hpp"

namespace sns::obs {
class MetricsRegistry;
class Tracer;
}  // namespace sns::obs

namespace sns::resolver {

/// Maps nameserver identities to simulated nodes. The deployment layer
/// registers every authoritative server here (by owner name and by
/// glue address), standing in for real-world socket addressing.
class ServerDirectory {
 public:
  void register_server(const dns::Name& ns_name, net::Ipv4Addr address, net::NodeId node);
  [[nodiscard]] std::optional<net::NodeId> by_name(const dns::Name& ns_name) const;
  [[nodiscard]] std::optional<net::NodeId> by_address(net::Ipv4Addr address) const;

 private:
  // Hashed on both sides: ns-name lookups ride the Name's cached
  // packed-key hash, addresses are already integers.
  std::unordered_map<dns::Name, net::NodeId> by_name_;
  std::unordered_map<std::uint32_t, net::NodeId> by_address_;
};

/// Outcome of one iterative resolution. Work accounting for the E7/E9
/// benches lives in `stats`, the shape shared with Resolution and
/// BrowseResult.
struct IterativeResult {
  QueryStats stats;
  dns::RRset records;
};

class IterativeResolver {
 public:
  IterativeResolver(net::Network& network, net::NodeId self, const ServerDirectory& directory,
                    net::NodeId root_server);

  void set_cache(DnsCache* cache) { cache_ = cache; }
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  util::Result<IterativeResult> resolve(const dns::Name& name, dns::RRType type);

 private:
  struct Hop {
    net::NodeId server;
    dns::Name zone;  // what this server is believed authoritative for
  };

  util::Result<dns::Message> query_server(net::NodeId server, const dns::Name& name,
                                          dns::RRType type, QueryStats& stats);

  net::Network& network_;
  net::NodeId self_;
  const ServerDirectory& directory_;
  net::NodeId root_server_;
  DnsCache* cache_ = nullptr;
  std::uint16_t next_id_ = 100;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sns::resolver
