// cache.hpp — resolver cache with TTL expiry, LRU bound and negative
// caching (RFC 2308).
//
// §4.4 of the paper: "building it over the DNS allows for caching and
// broadcast-based discovery" — caching is what makes repeated AR gaze
// lookups cheap. The cache runs on simulated time, so TTL behaviour is
// exact and testable.
//
// Both stores are hash maps keyed by (packed name, qtype): the Name's
// canonical packed key makes hashing free and equality one memcmp, so
// a probe costs O(1) instead of O(depth × label length) tree compares.
// Positive and negative entries carry independent LRU chains bounded by
// the same capacity; evictions are counted per store.
#pragma once

#include <list>
#include <optional>
#include <unordered_map>

#include "dns/record.hpp"
#include "dns/type.hpp"
#include "net/sim.hpp"

namespace sns::obs {
class MetricsRegistry;
}  // namespace sns::obs

namespace sns::resolver {

using dns::Name;
using dns::RRset;
using dns::RRType;

class DnsCache {
 public:
  explicit DnsCache(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Insert a positive answer; expiry = now + min TTL of the set.
  void put(const RRset& records, net::TimePoint now);

  /// Insert a full answer under an explicit (qname, qtype) key — used
  /// for ANY queries and CNAME-chain answers where the records' own
  /// name/type differ from the question's.
  void put_answer(const Name& qname, RRType qtype, const RRset& records, net::TimePoint now);

  /// Insert a negative answer (NXDOMAIN / NODATA) with the SOA-derived TTL.
  void put_negative(const Name& name, RRType type, dns::Rcode rcode, std::uint32_t ttl,
                    net::TimePoint now);

  /// Positive hit: returns the RRset with TTLs decremented by age.
  std::optional<RRset> get(const Name& name, RRType type, net::TimePoint now);

  /// Negative hit: the cached rcode.
  std::optional<dns::Rcode> get_negative(const Name& name, RRType type, net::TimePoint now);

  void clear();
  [[nodiscard]] std::size_t size() const noexcept { return positive_.size() + negative_.size(); }
  [[nodiscard]] std::size_t negative_size() const noexcept { return negative_.size(); }

  // Statistics for the cache ablation bench (E10).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// Report into a registry (non-owning; nullptr detaches). Counters:
  /// resolver.cache.{hit,miss,negative_hit,insert,evict,negative_insert,
  /// negative_evict}.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

 private:
  struct Key {
    Name name;
    std::uint16_t type;
    friend bool operator==(const Key& a, const Key& b) {
      return a.type == b.type && a.name == b.name;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      // The name hash is already well mixed (FNV-1a); fold the type in.
      return key.name.hash() ^ (static_cast<std::size_t>(key.type) * 0x9e3779b97f4a7c15ULL);
    }
  };
  using LruList = std::list<Key>;
  struct PositiveEntry {
    RRset records;
    net::TimePoint inserted{0};
    net::TimePoint expires{0};
    LruList::iterator lru;
  };
  struct NegativeEntry {
    dns::Rcode rcode = dns::Rcode::NXDomain;
    net::TimePoint expires{0};
    LruList::iterator lru;
  };

  void bump_counter(const char* name);

  std::size_t capacity_;
  std::unordered_map<Key, PositiveEntry, KeyHash> positive_;
  std::unordered_map<Key, NegativeEntry, KeyHash> negative_;
  LruList lru_;      // positive entries, front = most recent
  LruList neg_lru_;  // negative entries, front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace sns::resolver
