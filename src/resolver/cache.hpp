// cache.hpp — resolver cache with TTL expiry, LRU bound and negative
// caching (RFC 2308).
//
// §4.4 of the paper: "building it over the DNS allows for caching and
// broadcast-based discovery" — caching is what makes repeated AR gaze
// lookups cheap. The cache runs on simulated time, so TTL behaviour is
// exact and testable.
#pragma once

#include <list>
#include <map>
#include <optional>

#include "dns/record.hpp"
#include "dns/type.hpp"
#include "net/sim.hpp"

namespace sns::obs {
class MetricsRegistry;
}  // namespace sns::obs

namespace sns::resolver {

using dns::Name;
using dns::RRset;
using dns::RRType;

class DnsCache {
 public:
  explicit DnsCache(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Insert a positive answer; expiry = now + min TTL of the set.
  void put(const RRset& records, net::TimePoint now);

  /// Insert a full answer under an explicit (qname, qtype) key — used
  /// for ANY queries and CNAME-chain answers where the records' own
  /// name/type differ from the question's.
  void put_answer(const Name& qname, RRType qtype, const RRset& records, net::TimePoint now);

  /// Insert a negative answer (NXDOMAIN / NODATA) with the SOA-derived TTL.
  void put_negative(const Name& name, RRType type, dns::Rcode rcode, std::uint32_t ttl,
                    net::TimePoint now);

  /// Positive hit: returns the RRset with TTLs decremented by age.
  std::optional<RRset> get(const Name& name, RRType type, net::TimePoint now);

  /// Negative hit: the cached rcode.
  std::optional<dns::Rcode> get_negative(const Name& name, RRType type, net::TimePoint now);

  void clear();
  [[nodiscard]] std::size_t size() const noexcept { return positive_.size() + negative_.size(); }

  // Statistics for the cache ablation bench (E10).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// Report into a registry (non-owning; nullptr detaches). Counters:
  /// resolver.cache.{hit,miss,negative_hit,insert,evict}.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

 private:
  struct Key {
    Name name;
    std::uint16_t type;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct PositiveEntry {
    RRset records;
    net::TimePoint inserted{0};
    net::TimePoint expires{0};
    std::list<Key>::iterator lru;
  };
  struct NegativeEntry {
    dns::Rcode rcode = dns::Rcode::NXDomain;
    net::TimePoint expires{0};
  };

  void touch(PositiveEntry& entry, const Key& key);
  void evict_if_needed();

  std::size_t capacity_;
  std::map<Key, PositiveEntry> positive_;
  std::map<Key, NegativeEntry> negative_;
  std::list<Key> lru_;  // front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace sns::resolver
