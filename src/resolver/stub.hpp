// stub.hpp — client-side stub resolver with spatial search list.
//
// §2.1 of the paper: "Local spatial names are completed via the
// resolvers appending their global location to a query, meaning clients
// just need to know their relative location." A device in the Oval
// Office asks for `speaker` and the stub completes it to
// `speaker.oval-office.1600.…usa.loc` before querying the edge
// nameserver. The stub also consults a local DnsCache and records the
// end-to-end latency of every resolution in simulated time.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "net/network.hpp"
#include "resolver/cache.hpp"
#include "resolver/query_stats.hpp"

namespace sns::obs {
class MetricsRegistry;
class Tracer;
}  // namespace sns::obs

namespace sns::resolver {

/// Result of one stub resolution. Accounting lives in `stats`, the
/// shape shared with IterativeResult and BrowseResult.
struct Resolution {
  QueryStats stats;
  dns::RRset records;        // final answer RRset(s), CNAMEs included
  dns::Name effective_name;  // after search-list completion
};

class StubResolver {
 public:
  /// `server` is the recursive/edge nameserver this stub points at
  /// (the paper's §4.2 edge deployment).
  StubResolver(net::Network& network, net::NodeId self, net::NodeId server);

  /// Spatial suffixes appended to relative names, most specific first
  /// (the device's own room, building, …). An absolute name (trailing
  /// dot) skips the search list.
  void set_search_list(std::vector<dns::Name> suffixes);
  void set_cache(DnsCache* cache) { cache_ = cache; }
  void set_timeout(net::Duration timeout, int attempts);
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Resolve a possibly-relative name.
  util::Result<Resolution> resolve(std::string_view name_text, dns::RRType type);

  /// Resolve an already-absolute name.
  util::Result<Resolution> resolve(const dns::Name& name, dns::RRType type);

  /// Raw message exchange with the configured server (used by DNS-SD
  /// browse and the update client).
  util::Result<dns::Message> exchange(const dns::Message& query);

  [[nodiscard]] net::NodeId self() const noexcept { return self_; }

 private:
  util::Result<Resolution> resolve_absolute(const dns::Name& name, dns::RRType type);
  /// Feed one ExchangeResult's timeout/retry accounting into
  /// `resolver.exchange.{timeout,retry}` (attempts beyond the first are
  /// retries; a failed exchange is a timeout).
  void record_exchange_outcome(const util::Result<net::ExchangeResult>& result);

  net::Network& network_;
  net::NodeId self_;
  net::NodeId server_;
  std::vector<dns::Name> search_list_;
  DnsCache* cache_ = nullptr;
  net::Duration timeout_ = net::ms(2000);
  int attempts_ = 3;
  std::uint16_t next_id_ = 1;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sns::resolver
