#include "resolver/stub.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace sns::resolver {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;
using util::fail;
using util::Result;

StubResolver::StubResolver(net::Network& network, net::NodeId self, net::NodeId server)
    : network_(network), self_(self), server_(server) {}

void StubResolver::record_exchange_outcome(const util::Result<net::ExchangeResult>& result) {
  if (metrics_ == nullptr) return;
  if (!result.ok()) {
    metrics_->counter("resolver.exchange.timeout").add();
  } else if (result.value().attempts > 1) {
    metrics_->counter("resolver.exchange.retry")
        .add(static_cast<std::uint64_t>(result.value().attempts - 1));
  }
}

void StubResolver::set_search_list(std::vector<Name> suffixes) {
  search_list_ = std::move(suffixes);
}

void StubResolver::set_timeout(net::Duration timeout, int attempts) {
  timeout_ = timeout;
  attempts_ = attempts;
}

Result<dns::Message> StubResolver::exchange(const Message& query) {
  auto wire = query.encode();
  auto result = network_.exchange(self_, server_, std::span(wire), timeout_, attempts_);
  record_exchange_outcome(result);
  if (!result.ok()) return result.error();
  auto response = Message::decode(std::span(result.value().response));
  if (!response.ok()) return fail("stub: malformed response: " + response.error().message);
  if (response.value().header.id != query.header.id) return fail("stub: response id mismatch");

  // Truncated? Retry once advertising a larger EDNS0 payload (RFC 6891);
  // the simulator's "bigger transport".
  if (response.value().header.tc && dns::advertised_udp_size(query) == dns::kClassicUdpLimit) {
    Message retry = query;
    dns::add_edns(retry, 4096);
    auto retry_wire = retry.encode();
    auto retry_result =
        network_.exchange(self_, server_, std::span(retry_wire), timeout_, attempts_);
    record_exchange_outcome(retry_result);
    if (!retry_result.ok()) return retry_result.error();
    auto retry_response = Message::decode(std::span(retry_result.value().response));
    if (!retry_response.ok()) return fail("stub: malformed EDNS retry response");
    return retry_response;
  }
  return response;
}

Result<Resolution> StubResolver::resolve_absolute(const Name& name, RRType type) {
  net::TimePoint start = network_.clock().now();
  obs::ScopedSpan span(tracer_, "stub.resolve");
  span.annotate("name", name.to_string());
  span.annotate("type", dns::to_string(type));

  if (cache_ != nullptr) {
    obs::ScopedSpan probe(tracer_, "resolver.cache.probe");
    if (auto cached = cache_->get(name, type, start)) {
      probe.annotate("outcome", "hit");
      span.annotate("from_cache", "true");
      Resolution r;
      r.stats.rcode = Rcode::NoError;
      r.records = std::move(*cached);
      r.stats.from_cache = true;
      r.effective_name = name;
      return r;
    }
    if (auto negative = cache_->get_negative(name, type, start)) {
      probe.annotate("outcome", "negative_hit");
      span.annotate("from_cache", "true");
      Resolution r;
      r.stats.rcode = *negative;
      r.stats.from_cache = true;
      r.effective_name = name;
      return r;
    }
    probe.annotate("outcome", "miss");
  }

  Message query = dns::make_query(next_id_++, name, type);
  auto response = exchange(query);
  if (metrics_ != nullptr) metrics_->counter("resolver.stub.queries").add();
  if (!response.ok()) {
    if (metrics_ != nullptr) metrics_->counter("resolver.stub.failures").add();
    return response.error();
  }
  const Message& msg = response.value();

  Resolution r;
  r.stats.rcode = msg.header.rcode;
  r.records = msg.answers;
  r.stats.latency = network_.clock().now() - start;
  r.stats.queries_sent = 1;
  r.effective_name = name;
  span.annotate("rcode", dns::to_string(r.stats.rcode));
  if (metrics_ != nullptr)
    metrics_->histogram("resolver.stub.latency_us")
        .record(static_cast<std::uint64_t>(r.stats.latency.count()));

  if (cache_ != nullptr) {
    if (r.stats.rcode == Rcode::NoError && !r.records.empty()) {
      // Cache each RRset (grouped by name+type) separately, plus the
      // whole answer under the question key (covers ANY and CNAME-chain
      // answers whose records carry different names/types).
      std::size_t i = 0;
      while (i < r.records.size()) {
        std::size_t j = i + 1;
        while (j < r.records.size() && r.records[j].name == r.records[i].name &&
               r.records[j].type == r.records[i].type)
          ++j;
        cache_->put(dns::RRset(r.records.begin() + static_cast<std::ptrdiff_t>(i),
                               r.records.begin() + static_cast<std::ptrdiff_t>(j)),
                    network_.clock().now());
        i = j;
      }
      cache_->put_answer(name, type, r.records, network_.clock().now());
    } else if (r.stats.rcode == Rcode::NXDomain ||
               (r.stats.rcode == Rcode::NoError && r.records.empty())) {
      // Negative cache using the SOA MINIMUM from the authority section.
      std::uint32_t ttl = 60;
      for (const auto& rr : msg.authorities)
        if (const auto* soa = std::get_if<dns::SoaData>(&rr.rdata))
          ttl = std::min(rr.ttl, soa->minimum);
      cache_->put_negative(name, type,
                           r.stats.rcode == Rcode::NoError ? Rcode::NoError : Rcode::NXDomain,
                           ttl, network_.clock().now());
    }
  }
  return r;
}

Result<Resolution> StubResolver::resolve(const Name& name, RRType type) {
  return resolve_absolute(name, type);
}

Result<Resolution> StubResolver::resolve(std::string_view name_text, RRType type) {
  bool absolute = !name_text.empty() && name_text.back() == '.';
  auto parsed = Name::parse(name_text);
  if (!parsed.ok()) return parsed.error();
  Name name = std::move(parsed).value();

  if (absolute || search_list_.empty()) return resolve_absolute(name, type);

  // Search-list completion: most specific suffix first, then the name
  // as given. The first NOERROR answer wins; NXDOMAIN/REFUSED keep the
  // search going. If nothing succeeds, report NXDOMAIN when any
  // candidate produced one (the usual resolver convention).
  std::optional<Resolution> fallback;
  auto consider = [&](Result<Resolution> result) -> std::optional<Result<Resolution>> {
    if (!result.ok()) return std::nullopt;
    if (result.value().stats.rcode == Rcode::NoError) return result;
    if (!fallback.has_value() || result.value().stats.rcode == Rcode::NXDomain)
      fallback = std::move(result).value();
    return std::nullopt;
  };
  for (const auto& suffix : search_list_) {
    auto completed = name.concat(suffix);
    if (!completed.ok()) continue;
    if (auto hit = consider(resolve_absolute(completed.value(), type))) return std::move(*hit);
  }
  if (auto hit = consider(resolve_absolute(name, type))) return std::move(*hit);
  if (fallback.has_value()) return std::move(*fallback);
  return fail("stub: name unresolvable through search list");
}

}  // namespace sns::resolver
