#include "resolver/browse.hpp"

#include "util/strings.hpp"

namespace sns::resolver {

using dns::Message;
using dns::Name;
using dns::RRType;
using util::fail;
using util::Result;

namespace {

Result<Name> type_name_in_domain(const std::string& service_type, const Name& domain) {
  Name name = domain;
  auto parts = util::split(service_type, '.');
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    auto next = name.prepend(*it);
    if (!next.ok()) return next.error();
    name = std::move(next).value();
  }
  return name;
}

void fill_from_records(DiscoveredService& service, const dns::RRset& records) {
  for (const auto& rr : records) {
    if (const auto* srv = std::get_if<dns::SrvData>(&rr.rdata)) {
      service.host = srv->target;
      service.port = srv->port;
    } else if (const auto* txt = std::get_if<dns::TxtData>(&rr.rdata)) {
      service.txt = txt->strings;
    }
  }
}

}  // namespace

Result<BrowseResult> browse_unicast(StubResolver& stub, const std::string& service_type,
                                    const Name& domain) {
  BrowseResult out;
  auto type_name = type_name_in_domain(service_type, domain);
  if (!type_name.ok()) return type_name.error();

  auto ptr = stub.resolve(type_name.value(), RRType::PTR);
  if (!ptr.ok()) return ptr.error();
  out.stats.rcode = ptr.value().stats.rcode;
  out.stats.latency += ptr.value().stats.latency;
  ++out.stats.queries_sent;
  out.stats.from_cache = ptr.value().stats.from_cache;

  for (const auto& rr : ptr.value().records) {
    const auto* target = std::get_if<dns::PtrData>(&rr.rdata);
    if (target == nullptr) continue;
    DiscoveredService service;
    service.instance = target->target;

    auto srv = stub.resolve(target->target, RRType::SRV);
    ++out.stats.queries_sent;
    if (srv.ok()) {
      out.stats.latency += srv.value().stats.latency;
      fill_from_records(service, srv.value().records);
    }
    auto txt = stub.resolve(target->target, RRType::TXT);
    ++out.stats.queries_sent;
    if (txt.ok()) {
      out.stats.latency += txt.value().stats.latency;
      fill_from_records(service, txt.value().records);
    }
    service.discovered_after = out.stats.latency;
    out.services.push_back(std::move(service));
  }
  return out;
}

Result<BrowseResult> browse_mdns(net::Network& network, net::NodeId self,
                                 const std::string& service_type, const Name& domain,
                                 net::Duration window) {
  BrowseResult out;
  net::TimePoint start = network.clock().now();

  auto type_name = type_name_in_domain(service_type, domain);
  if (!type_name.ok()) return type_name.error();

  constexpr std::uint32_t kMdnsGroup = 5353;  // matches server::kMdnsGroup
  Message ptr_query = dns::make_query(1, type_name.value(), RRType::PTR, false);
  auto wire = ptr_query.encode();
  ++out.stats.queries_sent;
  auto responses = network.multicast_query(self, kMdnsGroup, std::span(wire), window);

  for (const auto& response : responses) {
    auto msg = Message::decode(std::span(response.payload));
    if (!msg.ok()) continue;
    for (const auto& rr : msg.value().answers) {
      const auto* target = std::get_if<dns::PtrData>(&rr.rdata);
      if (target == nullptr) continue;
      DiscoveredService service;
      service.instance = target->target;

      // Per-instance SRV + TXT, again over multicast with its own window.
      for (RRType follow_type : {RRType::SRV, RRType::TXT}) {
        Message follow = dns::make_query(2, target->target, follow_type, false);
        auto follow_wire = follow.encode();
        ++out.stats.queries_sent;
        auto follow_responses =
            network.multicast_query(self, kMdnsGroup, std::span(follow_wire), window / 2);
        for (const auto& fr : follow_responses) {
          auto fmsg = Message::decode(std::span(fr.payload));
          if (fmsg.ok()) fill_from_records(service, fmsg.value().answers);
        }
      }
      service.discovered_after = network.clock().now() - start;
      out.services.push_back(std::move(service));
    }
  }
  out.stats.rcode = dns::Rcode::NoError;
  out.stats.latency = network.clock().now() - start;
  return out;
}

}  // namespace sns::resolver
