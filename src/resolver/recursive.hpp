// recursive.hpp — a caching recursive resolver service.
//
// §4.1: "existing DNS resolver infrastructure can be used to perform
// queries." This is that infrastructure: a node-attached service that
// accepts RD=1 stub queries, performs iterative resolution on the
// client's behalf (referral chasing, CNAME restart, concurrent border
// pursuit), caches aggressively, and answers with RA=1. Edge
// deployments (§4.2) typically co-locate one of these with the room's
// authoritative server so a single LAN round-trip serves both local
// and global names.
//
// §4.2's privacy caveat applies: "recursive resolvers can correlate
// client IPs with unencrypted queries" — the service optionally strips
// client identity from its upstream queries (it always does here, since
// iterative queries carry no client data: the simulator's node id of
// the *resolver* is what upstream servers see, i.e. this module is the
// query anonymiser that oblivious-DNS schemes approximate).
#pragma once

#include "dns/message.hpp"
#include "net/network.hpp"
#include "resolver/cache.hpp"
#include "resolver/iterative.hpp"

namespace sns::resolver {

class RecursiveResolver {
 public:
  /// The service runs on `node`, resolving via the directory from
  /// `root_server`. It owns its cache.
  RecursiveResolver(net::Network& network, net::NodeId node,
                    const ServerDirectory& directory, net::NodeId root_server,
                    std::size_t cache_capacity = 4096);

  /// Answer one stub query (exposed for tests; the network handler
  /// calls this).
  [[nodiscard]] dns::Message handle(const dns::Message& query);

  /// Install the datagram handler on the node.
  void bind();

  [[nodiscard]] const DnsCache& cache() const noexcept { return cache_; }
  [[nodiscard]] std::uint64_t queries_served() const noexcept { return queries_served_; }

  /// Attach observability sinks; forwarded to the inner iterative
  /// resolver and cache (metrics only — the cache emits no spans).
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
    iterative_.set_metrics(metrics);
    cache_.set_metrics(metrics);
  }
  void set_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    iterative_.set_tracer(tracer);
  }

 private:
  net::Network& network_;
  net::NodeId node_;
  IterativeResolver iterative_;
  DnsCache cache_;
  std::uint64_t queries_served_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sns::resolver
