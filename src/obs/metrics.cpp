#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/json.hpp"

namespace sns::obs {

namespace {
constexpr std::size_t kSubBuckets = 16;  // linear sub-buckets per octave
constexpr std::size_t kSubBits = 4;      // log2(kSubBuckets)
}  // namespace

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // exponent >= 4: value in [2^e, 2^(e+1)), sliced into 16 linear steps.
  auto exponent = static_cast<std::size_t>(std::bit_width(value)) - 1;
  std::size_t sub = static_cast<std::size_t>(value >> (exponent - kSubBits)) & (kSubBuckets - 1);
  return (exponent - kSubBits + 1) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_lo(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  std::size_t exponent = index / kSubBuckets + kSubBits - 1;
  std::uint64_t sub = index % kSubBuckets;
  return (std::uint64_t{1} << exponent) + (sub << (exponent - kSubBits));
}

std::uint64_t Histogram::bucket_hi(std::size_t index) noexcept {
  if (index < kSubBuckets) return index + 1;
  std::size_t exponent = index / kSubBuckets + kSubBits - 1;
  return bucket_lo(index) + (std::uint64_t{1} << (exponent - kSubBits));
}

void Histogram::record(std::uint64_t value) noexcept {
  std::size_t index = bucket_of(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  ++count_;
  sum_ += value;
  if (count_ == 1 || value < min_) min_ = value;
  if (value > max_) max_ = value;
}

double Histogram::quantile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested quantile (1-based, ceil convention).
  auto target = static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count_)));
  if (target == 0) target = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= target) {
      double fraction = static_cast<double>(target - cumulative) /
                        static_cast<double>(buckets_[i]);
      double lo = static_cast<double>(bucket_lo(i));
      double hi = static_cast<double>(bucket_hi(i));
      double estimate = lo + fraction * (hi - lo);
      return std::clamp(estimate, static_cast<double>(min_), static_cast<double>(max_));
    }
    cumulative += buckets_[i];
  }
  return static_cast<double>(max_);
}

void Histogram::reset() {
  buckets_.clear();
  count_ = sum_ = min_ = max_ = 0;
}

std::optional<std::uint64_t> MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  if (it == counters_.end()) return std::nullopt;
  return it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.begin_object("counters");
  for (const auto& [name, counter] : counters_) w.field(name, counter.value());
  w.end_object();
  w.begin_object("gauges");
  for (const auto& [name, gauge] : gauges_) w.field(name, gauge.value());
  w.end_object();
  w.begin_object("histograms");
  for (const auto& [name, h] : histograms_) {
    w.begin_object(name);
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("min", h.min());
    w.field("max", h.max());
    w.field("mean", h.mean());
    w.field("p50", h.p50());
    w.field("p90", h.p90());
    w.field("p99", h.p99());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace sns::obs
