#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/json.hpp"

namespace sns::obs {

namespace {

/// Lower an atomic min/max bound with a CAS loop (relaxed: metric
/// bounds are statistics, not synchronisation).
void update_min(std::atomic<std::uint64_t>& slot, std::uint64_t value) noexcept {
  std::uint64_t prev = slot.load(std::memory_order_relaxed);
  while (value < prev &&
         !slot.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

void update_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) noexcept {
  std::uint64_t prev = slot.load(std::memory_order_relaxed);
  while (value > prev &&
         !slot.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // exponent >= 4: value in [2^e, 2^(e+1)), sliced into 16 linear steps.
  auto exponent = static_cast<std::size_t>(std::bit_width(value)) - 1;
  std::size_t sub = static_cast<std::size_t>(value >> (exponent - kSubBits)) & (kSubBuckets - 1);
  return (exponent - kSubBits + 1) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_lo(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  std::size_t exponent = index / kSubBuckets + kSubBits - 1;
  std::uint64_t sub = index % kSubBuckets;
  return (std::uint64_t{1} << exponent) + (sub << (exponent - kSubBits));
}

std::uint64_t Histogram::bucket_hi(std::size_t index) noexcept {
  if (index < kSubBuckets) return index + 1;
  std::size_t exponent = index / kSubBuckets + kSubBits - 1;
  return bucket_lo(index) + (std::uint64_t{1} << (exponent - kSubBits));
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  update_min(min_, value);
  update_max(max_, value);
}

double Histogram::quantile(double p) const noexcept {
  std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested quantile (1-based, ceil convention).
  auto target = static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(n)));
  if (target == 0) target = 1;
  std::uint64_t observed_min = min();
  std::uint64_t observed_max = max();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= target) {
      double fraction = static_cast<double>(target - cumulative) /
                        static_cast<double>(in_bucket);
      double lo = static_cast<double>(bucket_lo(i));
      double hi = static_cast<double>(bucket_hi(i));
      double estimate = lo + fraction * (hi - lo);
      return std::clamp(estimate, static_cast<double>(observed_min),
                        static_cast<double>(observed_max));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(observed_max);
}

void Histogram::merge_from(const Histogram& other) noexcept {
  std::uint64_t other_count = other.count();
  if (other_count == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other_count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  update_min(min_, other.min());
  update_max(max_, other.max());
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::uint64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  return histograms_[name];
}

std::optional<std::uint64_t> MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) return std::nullopt;
  return it->second.value();
}

std::optional<double> MetricsRegistry::gauge_value(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // scoped_lock orders both mutexes deadlock-free; merging a registry
  // into itself would self-deadlock and makes no sense anyway.
  if (&other == this) return;
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, counter] : other.counters_) counters_[name].add(counter.value());
  for (const auto& [name, gauge] : other.gauges_) {
    Gauge& dst = gauges_[name];
    if (gauge.merge_policy() == Gauge::Merge::Max) {
      dst.set_merge(Gauge::Merge::Max);
      dst.set(std::max(dst.value(), gauge.value()));
    } else {
      dst.add(gauge.value());
    }
  }
  for (const auto& [name, histogram] : other.histograms_)
    histograms_[name].merge_from(histogram);
}

void MetricsRegistry::write_fields(JsonWriter& w) const {
  std::lock_guard lock(mu_);
  w.begin_object("counters");
  for (const auto& [name, counter] : counters_) w.field(name, counter.value());
  w.end_object();
  w.begin_object("gauges");
  for (const auto& [name, gauge] : gauges_) w.field(name, gauge.value());
  w.end_object();
  w.begin_object("histograms");
  for (const auto& [name, h] : histograms_) {
    w.begin_object(name);
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("min", h.min());
    w.field("max", h.max());
    w.field("mean", h.mean());
    w.field("p50", h.p50());
    w.field("p90", h.p90());
    w.field("p99", h.p99());
    w.end_object();
  }
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  write_fields(w);
  w.end_object();
  return w.take();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, counter] : counters_) counter.reset();
  for (auto& [name, gauge] : gauges_) gauge.set(0.0);
  for (auto& [name, histogram] : histograms_) histogram.reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace sns::obs
