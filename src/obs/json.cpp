#include "obs/json.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace sns::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buffer{};
          std::snprintf(buffer.data(), buffer.size(), "\\u%04x", c);
          out += buffer.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = true;
}

void JsonWriter::key_prefix(std::string_view key) {
  comma();
  out_ += '"';
  out_ += json_escape(key);
  out_ += "\":";
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_ = false;
}

void JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += '{';
  need_comma_ = false;
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  need_comma_ = false;
}

void JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += '[';
  need_comma_ = false;
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::field(std::string_view key, std::string_view v) {
  key_prefix(key);
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::field(std::string_view key, const char* v) {
  field(key, std::string_view(v));
}

void JsonWriter::field(std::string_view key, std::int64_t v) {
  key_prefix(key);
  out_ += std::to_string(v);
}

void JsonWriter::field(std::string_view key, std::uint64_t v) {
  key_prefix(key);
  out_ += std::to_string(v);
}

void JsonWriter::field(std::string_view key, double v) {
  key_prefix(key);
  std::array<char, 32> buffer{};
  std::snprintf(buffer.data(), buffer.size(), "%.6g", v);
  out_ += buffer.data();
}

void JsonWriter::field(std::string_view key, bool v) {
  key_prefix(key);
  out_ += v ? "true" : "false";
}

void JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(double v) {
  comma();
  std::array<char, 32> buffer{};
  std::snprintf(buffer.data(), buffer.size(), "%.6g", v);
  out_ += buffer.data();
}

}  // namespace sns::obs
