// json.hpp — minimal JSON emission for observability exports.
//
// The obs subsystem ships span trees and metric snapshots to benches in
// machine-readable form (ISSUE: "benches emit machine-readable
// trajectories alongside their current stdout tables"). This is a
// write-only JSON builder: no DOM, no parsing, just correctly escaped
// output assembled into a string. Keys are emitted in the order the
// caller writes them, so exports are deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sns::obs {

/// Escape a string for inclusion inside JSON quotes (without the quotes).
std::string json_escape(std::string_view text);

/// Streaming JSON writer. The caller is responsible for calling
/// begin/end in a balanced way; commas between siblings are inserted
/// automatically.
class JsonWriter {
 public:
  void begin_object();
  void begin_object(std::string_view key);
  void end_object();
  void begin_array();
  void begin_array(std::string_view key);
  void end_array();

  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, const char* value);
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, double value);
  void field(std::string_view key, bool value);

  /// A bare value inside an array.
  void value(std::string_view v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(double v);
  void value(bool v);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  void comma();
  void key_prefix(std::string_view key);

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace sns::obs
