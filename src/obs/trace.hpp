// trace.hpp — per-query span trees over simulated time.
//
// A Tracer records what a resolution *did*: one span per upstream hop,
// referral, CNAME restart, cache probe and concurrent-border branch
// (§3.1/§3.2's per-hop timing stories are only checkable with this).
//
// Threading: a Tracer is a strictly single-owner object — the span
// stack makes no sense interleaved across threads. Under the shard
// model (DESIGN.md §10) that owner is one runtime worker, one
// SnsDeployment, or the simulator thread; unlike MetricsRegistry there
// is no cross-thread dump path, so the tracer stays a plain span
// stack: begin_span() nests under the currently open span, end_span()
// pops. Finished root spans accumulate in a bounded ring for export,
// read by the owner (never by another live thread).
//
// Span names follow the taxonomy in DESIGN.md §7:
//   stub.resolve, resolver.iterative, resolver.hop, resolver.branch,
//   resolver.referral, resolver.cname_restart, resolver.cache.probe,
//   recursive.handle, server.handle, net.exchange
//
// All instrumentation goes through ScopedSpan, which is null-safe: a
// component holding `Tracer* tracer_ = nullptr` pays one pointer test
// when tracing is off.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/sim.hpp"

namespace sns::obs {

struct Span {
  std::string name;
  net::TimePoint start{0};
  net::TimePoint end{0};
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<Span> children;

  [[nodiscard]] net::Duration duration() const noexcept { return end - start; }
  /// Depth of this subtree: a leaf is 1.
  [[nodiscard]] int depth() const noexcept;
  /// Number of spans named `name` anywhere in this subtree.
  [[nodiscard]] int count(std::string_view span_name) const noexcept;
  /// First attribute value with this key, if any.
  [[nodiscard]] const std::string* attribute(std::string_view key) const noexcept;
};

class Tracer {
 public:
  /// Timestamps come from the simulation clock (virtual time).
  explicit Tracer(const net::SimClock& clock, std::size_t max_roots = 1024)
      : clock_(&clock), max_roots_(max_roots) {}

  void begin_span(std::string name);
  /// Annotate the innermost open span.
  void annotate(std::string key, std::string value);
  void annotate(std::string key, std::int64_t value);
  /// Annotate the open span at stack index `depth` (0 = outermost).
  /// Lets a ScopedSpan annotate itself while children are open.
  void annotate_at(std::size_t depth, std::string key, std::string value);
  void end_span();

  /// Finished root spans, oldest first (bounded: oldest are dropped
  /// beyond max_roots).
  [[nodiscard]] const std::vector<Span>& roots() const noexcept { return roots_; }
  [[nodiscard]] std::size_t open_depth() const noexcept { return stack_.size(); }
  void clear();

  /// {"spans":[{name,start_us,end_us,attrs:{...},children:[...]},...]}
  [[nodiscard]] std::string to_json() const;
  /// Export a single span tree in the same shape.
  static std::string span_to_json(const Span& span);

 private:
  const net::SimClock* clock_;
  std::size_t max_roots_;
  std::vector<Span> stack_;  // open spans, innermost last
  std::vector<Span> roots_;  // finished top-level spans
};

/// RAII span: begins on construction (when a tracer is attached) and
/// ends on destruction. Safe to construct with tracer == nullptr.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name) : tracer_(tracer) {
    if (tracer_ != nullptr) {
      tracer_->begin_span(std::move(name));
      depth_ = tracer_->open_depth() - 1;
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end_span();
  }

  /// Annotates *this* span even if child spans have since opened.
  void annotate(std::string key, std::string value) {
    if (tracer_ != nullptr) tracer_->annotate_at(depth_, std::move(key), std::move(value));
  }
  void annotate(std::string key, std::int64_t value) {
    if (tracer_ != nullptr) tracer_->annotate_at(depth_, std::move(key), std::to_string(value));
  }

 private:
  Tracer* tracer_;
  std::size_t depth_ = 0;
};

/// Point event: a zero-duration span (referral followed, CNAME restart).
inline void trace_event(Tracer* tracer, std::string name) {
  ScopedSpan span(tracer, std::move(name));
}

}  // namespace sns::obs
