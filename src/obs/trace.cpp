#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace sns::obs {

int Span::depth() const noexcept {
  int deepest = 0;
  for (const Span& child : children) deepest = std::max(deepest, child.depth());
  return deepest + 1;
}

int Span::count(std::string_view span_name) const noexcept {
  int total = name == span_name ? 1 : 0;
  for (const Span& child : children) total += child.count(span_name);
  return total;
}

const std::string* Span::attribute(std::string_view key) const noexcept {
  for (const auto& [k, v] : attributes)
    if (k == key) return &v;
  return nullptr;
}

void Tracer::begin_span(std::string name) {
  Span span;
  span.name = std::move(name);
  span.start = clock_->now();
  stack_.push_back(std::move(span));
}

void Tracer::annotate(std::string key, std::string value) {
  if (stack_.empty()) return;
  stack_.back().attributes.emplace_back(std::move(key), std::move(value));
}

void Tracer::annotate(std::string key, std::int64_t value) {
  annotate(std::move(key), std::to_string(value));
}

void Tracer::annotate_at(std::size_t depth, std::string key, std::string value) {
  if (depth >= stack_.size()) return;  // span already closed: drop quietly
  stack_[depth].attributes.emplace_back(std::move(key), std::move(value));
}

void Tracer::end_span() {
  if (stack_.empty()) return;  // unbalanced end: ignore rather than crash
  Span finished = std::move(stack_.back());
  stack_.pop_back();
  finished.end = clock_->now();
  if (!stack_.empty()) {
    stack_.back().children.push_back(std::move(finished));
    return;
  }
  roots_.push_back(std::move(finished));
  if (roots_.size() > max_roots_) roots_.erase(roots_.begin());
}

void Tracer::clear() {
  stack_.clear();
  roots_.clear();
}

namespace {

void write_span(JsonWriter& w, const Span& span) {
  w.begin_object();
  w.field("name", span.name);
  w.field("start_us", span.start.count());
  w.field("end_us", span.end.count());
  if (!span.attributes.empty()) {
    w.begin_object("attrs");
    for (const auto& [key, value] : span.attributes) w.field(key, value);
    w.end_object();
  }
  if (!span.children.empty()) {
    w.begin_array("children");
    for (const Span& child : span.children) write_span(w, child);
    w.end_array();
  }
  w.end_object();
}

}  // namespace

std::string Tracer::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.begin_array("spans");
  for (const Span& span : roots_) write_span(w, span);
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Tracer::span_to_json(const Span& span) {
  JsonWriter w;
  write_span(w, span);
  return w.take();
}

}  // namespace sns::obs
