// metrics.hpp — named counters, gauges and log-scale latency histograms.
//
// The measurement substrate the ROADMAP's "runs as fast as the hardware
// allows" goal needs: you can't optimise hot paths you can't see. Every
// resolver, server, cache and the network layer report into a
// MetricsRegistry; benches export it as JSON alongside their stdout
// tables, the way OpenFLAME attributes latency to hierarchy levels in
// its federated spatial-DNS deployments.
//
// Metric naming scheme (dot-separated, lowercase; documented in
// DESIGN.md §7): `<layer>.<component>.<measure>[_<unit>]`, e.g.
//   resolver.cache.hit            counter
//   net.hop.latency_us            histogram (microseconds)
//   resolver.iterative.fanout     histogram (dimensionless)
//
// The registry is process-wide by default (MetricsRegistry::global())
// but injectable everywhere for tests: each SnsDeployment owns its own
// instance so parallel test fixtures never share state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sns::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-linear histogram (HdrHistogram-style): one octave per power of
/// two, 16 linear sub-buckets per octave, so quantile estimates carry at
/// most ~6% relative error while recording stays O(1) with no
/// allocation beyond the bucket array. Values are non-negative integers
/// (typically microseconds).
class Histogram {
 public:
  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Quantile estimate, p in [0, 1]. Interpolated within the bucket the
  /// rank falls into and clamped to the observed [min, max].
  [[nodiscard]] double quantile(double p) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  void reset();

 private:
  static std::size_t bucket_of(std::uint64_t value) noexcept;
  static std::uint64_t bucket_lo(std::size_t index) noexcept;
  static std::uint64_t bucket_hi(std::size_t index) noexcept;

  std::vector<std::uint64_t> buckets_;  // grown on demand
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Named metric store. Lookups create on first use; references stay
/// stable for the registry's lifetime (node-based map), so hot paths
/// can cache `Counter&` once and bump it without a string lookup.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Read-only lookups (no creation) for tests and exporters.
  [[nodiscard]] std::optional<std::uint64_t> counter_value(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Full snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  ///  min,max,mean,p50,p90,p99},...}}
  [[nodiscard]] std::string to_json() const;

  void reset();

  /// Process-wide default instance for code with no injected registry.
  static MetricsRegistry& global();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sns::obs
