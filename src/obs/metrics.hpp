// metrics.hpp — named counters, gauges and log-scale latency histograms.
//
// The measurement substrate the ROADMAP's "runs as fast as the hardware
// allows" goal needs: you can't optimise hot paths you can't see. Every
// resolver, server, cache and the network layer report into a
// MetricsRegistry; benches export it as JSON alongside their stdout
// tables, the way OpenFLAME attributes latency to hierarchy levels in
// its federated spatial-DNS deployments.
//
// Metric naming scheme (dot-separated, lowercase; documented in
// DESIGN.md §7): `<layer>.<component>.<measure>[_<unit>]`, e.g.
//   resolver.cache.hit            counter
//   net.hop.latency_us            histogram (microseconds)
//   runtime.worker.connections    gauge (per-shard)
//
// Threading model (DESIGN.md §10): ownership is per shard — each
// runtime worker (and the simulator, and each SnsDeployment) owns its
// own registry and is that registry's only writer on the hot path. The
// primitives are nevertheless individually thread-safe (relaxed
// atomics), because dump/merge paths *read* a live shard's registry
// from another thread: SIGUSR1 aggregation walks every worker registry
// while the workers keep serving. Reads taken mid-traffic are
// instantaneous-but-approximate (a histogram's count may be one ahead
// of its sum); per-metric totals are never torn. Registry map structure
// is guarded by a small mutex that only the first use of a name and the
// dump/merge paths take; hot paths cache `Counter&` once (references
// are stable for the registry's lifetime) and pay one relaxed atomic
// add per event.
//
// The registry is process-wide by default (MetricsRegistry::global())
// but injectable everywhere for tests: each SnsDeployment and each
// runtime worker owns its own instance so parallel fixtures and shards
// never contend.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace sns::obs {

class JsonWriter;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  /// How MetricsRegistry::merge_from folds this gauge into a fleet
  /// total. Most gauges are additive across shards (connections, queue
  /// depth: the fleet total is the sum of per-shard values). Max is for
  /// fleet-wide facts every shard reports independently (snapshot
  /// generation), where summing would multiply by the shard count.
  enum class Merge : std::uint8_t { Sum, Max };

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept { value_.fetch_add(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

  void set_merge(Merge m) noexcept { merge_.store(m, std::memory_order_relaxed); }
  [[nodiscard]] Merge merge_policy() const noexcept {
    return merge_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<Merge> merge_{Merge::Sum};
};

/// Log-linear histogram (HdrHistogram-style): one octave per power of
/// two, 16 linear sub-buckets per octave, so quantile estimates carry at
/// most ~6% relative error while recording stays O(1) with no
/// allocation at all — the bucket array is a fixed ~8 KiB covering the
/// full uint64 range, which is what lets record() be a lock-free
/// fetch_add and lets a dump thread read a shard's histogram while the
/// shard keeps recording. Values are non-negative integers (typically
/// microseconds).
class Histogram {
 public:
  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Quantile estimate, p in [0, 1]. Interpolated within the bucket the
  /// rank falls into and clamped to the observed [min, max].
  [[nodiscard]] double quantile(double p) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  /// Fold another histogram's observations into this one (shard merge
  /// on dump). The source may be recording concurrently; the merge is
  /// then approximate in the same way a concurrent read is.
  void merge_from(const Histogram& other) noexcept;

  void reset() noexcept;

 private:
  static constexpr std::size_t kSubBuckets = 16;  // linear sub-buckets per octave
  static constexpr std::size_t kSubBits = 4;      // log2(kSubBuckets)
  // Highest index is bucket_of(UINT64_MAX) = (63-4+1)*16 + 15 = 975.
  static constexpr std::size_t kBucketCount = (64 - kSubBits) * kSubBuckets + kSubBuckets;

  static std::size_t bucket_of(std::uint64_t value) noexcept;
  static std::uint64_t bucket_lo(std::size_t index) noexcept;
  static std::uint64_t bucket_hi(std::size_t index) noexcept;

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
};

/// Named metric store. Lookups create on first use; references stay
/// stable for the registry's lifetime (node-based map), so hot paths
/// can cache `Counter&` once and bump it without a string lookup or the
/// structure mutex.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Read-only lookups (no creation) for tests and exporters.
  [[nodiscard]] std::optional<std::uint64_t> counter_value(const std::string& name) const;
  [[nodiscard]] std::optional<double> gauge_value(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Fold another registry's metrics into this one: counters add,
  /// gauges merge per their declared policy (sum by default, max for
  /// non-additive gauges — the destination adopts the source's policy),
  /// histograms merge bucket-wise. The source may belong to a live
  /// shard that is still recording.
  void merge_from(const MetricsRegistry& other);

  /// Full snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  ///  min,max,mean,p50,p90,p99},...}}
  [[nodiscard]] std::string to_json() const;
  /// The same three sub-objects written into an enclosing object the
  /// caller has already opened (fleet dumps nest one per shard).
  void write_fields(JsonWriter& w) const;

  /// Zero every metric in place. Entry names (and cached references)
  /// survive — a reset registry reports 0, not absence.
  void reset();

  /// Process-wide default instance for code with no injected registry.
  static MetricsRegistry& global();

 private:
  // mu_ guards map *structure* only; metric values are atomics.
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sns::obs
