// snsd — the Spatial Name System daemon.
//
// Loads master-file zones (including the paper's Table 1 extended
// types: LOC, BDADDR, WIFI, LORA, DTMF) and serves them authoritatively
// over real UDP and TCP sockets via the multi-core serving runtime
// (src/runtime/): N worker shards share the port through SO_REUSEPORT
// and answer from an RCU-lite zone snapshot, so reloads and RFC 2136
// dynamic updates land without pausing serving. This is the deployment
// story of §4.1 made concrete: an SNS zone is an ordinary DNS zone,
// and snsd is an ordinary (small, now multi-core) DNS server.
//
//   snsd --zone office.loc --listen 127.0.0.1 --port 5353 --threads 4
//
// Federated roles (DESIGN.md §15):
//   --zone-dir DIR     serve every *.loc/*.zone file in DIR as one
//                      authority — nested apexes give real delegation
//                      referrals at the cuts, and IXFR/AXFR queries are
//                      answered from the snapshot + delta journals
//   --edge HOST:PORT   be an edge nameserver: full-transfer every
//                      --mirror APEX from that primary before serving,
//                      then poll SOAs and pull IXFR deltas on a timer;
//                      when the primary goes dark past expiry, keep
//                      serving stale data (RFC 8767) and count it
//
// Operational surface:
//   SIGHUP           re-parse --zone/--zone-dir and publish atomically
//                    (edge mode: re-poll every mirrored zone now); on a
//                    parse error the old snapshot keeps serving
//   SIGUSR1          dump fleet metrics JSON (totals + per shard)
//   --metrics-dump N dump the same JSON every N seconds
//   --port-file P    write the realised port (for --port 0) to P,
//                    which is how the loopback integration test finds us
//   SIGINT/SIGTERM   graceful drain: stop accepting, flush in-flight
//                    TCP answers, join the workers

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "dns/master.hpp"
#include "federation/edge.hpp"
#include "federation/zone_dir.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"
#include "server/zone.hpp"
#include "util/log.hpp"
#include "util/result.hpp"

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_dump_metrics{false};
std::atomic<bool> g_reload{false};

void on_signal(int sig) {
  if (sig == SIGUSR1)
    g_dump_metrics.store(true);
  else if (sig == SIGHUP)
    g_reload.store(true);
  else
    g_stop.store(true);
}

struct Args {
  std::string zone_file;
  std::string zone_dir;
  std::string origin = ".";
  std::string listen = "127.0.0.1";
  std::uint16_t port = 5353;
  std::size_t threads = 0;  // 0 = hardware_concurrency
  std::size_t udp_batch = sns::transport::kUdpBatchDefault;
  bool answer_cache = true;
  bool spatial = true;
  sns::spatial::SpatialBackend spatial_backend = sns::spatial::SpatialBackend::Hilbert;
  std::string edge_primary;                // HOST:PORT of the parent to mirror from
  std::vector<std::string> mirror_apexes;  // zones to mirror in edge mode
  long refresh_ms = 0;                     // 0 = honour SOA refresh/retry
  long expire_ms = 0;                      // 0 = honour SOA expire
  std::string port_file;
  std::string metrics_file;  // empty = stderr
  long metrics_dump_seconds = 0;
  bool verbose = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--zone FILE | --zone-dir DIR | --edge HOST:PORT --mirror APEX...)"
               " [options]\n"
               "  --zone FILE          master-file zone to serve\n"
               "  --zone-dir DIR       serve every *.loc/*.zone in DIR (federated authority)\n"
               "  --edge HOST:PORT     edge mode: mirror zones from this primary via IXFR\n"
               "  --mirror APEX        zone apex to mirror in edge mode (repeatable)\n"
               "  --refresh-ms N       edge SOA poll cadence; 0 honours SOA fields (default)\n"
               "  --expire-ms N        edge staleness horizon; 0 honours SOA expire (default)\n"
               "  --origin NAME        $ORIGIN applied before the file's own (default .)\n"
               "  --listen ADDR        IPv4 address to bind (default 127.0.0.1)\n"
               "  --port N             UDP+TCP port; 0 picks an ephemeral port (default 5353)\n"
               "  --threads N          worker shards, 0..1024; 0 = one per hardware thread (default)\n"
               "  --udp-batch N        datagrams per UDP syscall round, 1..64 (default %zu;\n"
               "                       1 = plain recvfrom/sendto)\n"
               "  --no-answer-cache    disable the per-snapshot precompiled-answer cache\n"
               "  --no-spatial         disable the reverse geodetic (AREA query) index\n"
               "  --spatial-index B    hilbert (default) or rtree\n"
               "  --port-file PATH     write the realised port to PATH once bound\n"
               "  --metrics-dump N     dump metrics JSON every N seconds\n"
               "  --metrics-file PATH  metrics JSON destination (default stderr)\n"
               "  --verbose            info-level logging\n",
               argv0, sns::transport::kUdpBatchDefault);
  return 2;
}

/// Parse the master file at `path` into a servable immutable zone view
/// (apex = the SOA owner). Shared by startup and the SIGHUP reload
/// path — both hand the frozen view to the runtime, which publishes it
/// atomically.
sns::util::Result<sns::server::ZoneViewPtr> load_zone(const std::string& path,
                                                      const std::string& origin_text) {
  auto origin = sns::dns::Name::parse(origin_text);
  if (!origin.ok()) return origin.error();
  return sns::federation::load_zone_file(path, origin.value());
}

/// The zone set this invocation serves: one --zone file or a whole
/// --zone-dir. Used at startup and again on SIGHUP.
sns::util::Result<std::vector<sns::server::ZoneViewPtr>> load_zone_set(const Args& args) {
  if (!args.zone_dir.empty()) {
    auto origin = sns::dns::Name::parse(args.origin);
    if (!origin.ok()) return origin.error();
    return sns::federation::load_zone_dir(args.zone_dir, origin.value());
  }
  auto zone = load_zone(args.zone_file, args.origin);
  if (!zone.ok()) return zone.error();
  return std::vector<sns::server::ZoneViewPtr>{zone.value()};
}

void dump_metrics(const Args& args, sns::runtime::ServerRuntime& runtime) {
  std::string json = runtime.metrics_json();
  if (args.metrics_file.empty()) {
    std::fprintf(stderr, "%s\n", json.c_str());
    return;
  }
  std::ofstream out(args.metrics_file, std::ios::trunc);
  out << json << '\n';
}

sns::util::Result<sns::transport::Endpoint> parse_host_port(const std::string& text) {
  auto colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 >= text.size())
    return sns::util::fail("expected HOST:PORT, got '" + text + "'");
  char* end = nullptr;
  errno = 0;
  long port = std::strtol(text.c_str() + colon + 1, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || port < 1 || port > 65535)
    return sns::util::fail("bad port in '" + text + "'");
  return sns::transport::Endpoint::parse(text.substr(0, colon),
                                         static_cast<std::uint16_t>(port));
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* value = nullptr;
    if (arg == "--zone" && (value = next()))
      args.zone_file = value;
    else if (arg == "--zone-dir" && (value = next()))
      args.zone_dir = value;
    else if (arg == "--edge" && (value = next()))
      args.edge_primary = value;
    else if (arg == "--mirror" && (value = next()))
      args.mirror_apexes.emplace_back(value);
    else if (arg == "--refresh-ms" && (value = next()))
      args.refresh_ms = std::atol(value);
    else if (arg == "--expire-ms" && (value = next()))
      args.expire_ms = std::atol(value);
    else if (arg == "--origin" && (value = next()))
      args.origin = value;
    else if (arg == "--listen" && (value = next()))
      args.listen = value;
    else if (arg == "--port" && (value = next()))
      args.port = static_cast<std::uint16_t>(std::atoi(value));
    else if (arg == "--threads" && (value = next())) {
      // Parsed strictly: a negative or garbage value cast to size_t
      // would ask the runtime for ~2^64 worker shards.
      constexpr long kMaxThreads = 1024;
      char* end = nullptr;
      errno = 0;
      long n = std::strtol(value, &end, 10);
      if (errno != 0 || end == value || *end != '\0' || n < 0 || n > kMaxThreads) {
        std::fprintf(stderr, "snsd: invalid --threads '%s' (expected 0..%ld)\n", value,
                     kMaxThreads);
        return 2;
      }
      args.threads = static_cast<std::size_t>(n);
    }
    else if (arg == "--udp-batch" && (value = next())) {
      // Same strict parse as --threads: the listener clamps, but a typo
      // should be a usage error, not a silently-clamped surprise.
      char* end = nullptr;
      errno = 0;
      long n = std::strtol(value, &end, 10);
      if (errno != 0 || end == value || *end != '\0' || n < 1 ||
          n > static_cast<long>(sns::transport::UdpListener::kMaxBatch)) {
        std::fprintf(stderr, "snsd: invalid --udp-batch '%s' (expected 1..%zu)\n", value,
                     sns::transport::UdpListener::kMaxBatch);
        return 2;
      }
      args.udp_batch = static_cast<std::size_t>(n);
    }
    else if (arg == "--no-answer-cache")
      args.answer_cache = false;
    else if (arg == "--no-spatial")
      args.spatial = false;
    else if (arg == "--spatial-index" && (value = next())) {
      std::string_view backend = value;
      if (backend == "hilbert")
        args.spatial_backend = sns::spatial::SpatialBackend::Hilbert;
      else if (backend == "rtree")
        args.spatial_backend = sns::spatial::SpatialBackend::RTree;
      else {
        std::fprintf(stderr, "snsd: invalid --spatial-index '%s' (hilbert|rtree)\n", value);
        return 2;
      }
    }
    else if (arg == "--port-file" && (value = next()))
      args.port_file = value;
    else if (arg == "--metrics-dump" && (value = next()))
      args.metrics_dump_seconds = std::atol(value);
    else if (arg == "--metrics-file" && (value = next()))
      args.metrics_file = value;
    else if (arg == "--verbose")
      args.verbose = true;
    else
      return usage(argv[0]);
  }
  const bool edge_mode = !args.edge_primary.empty();
  if (edge_mode ? args.mirror_apexes.empty() || !args.zone_file.empty() ||
                      !args.zone_dir.empty()
                : args.zone_file.empty() == args.zone_dir.empty())
    return usage(argv[0]);
  if (args.verbose) sns::util::set_log_level(sns::util::LogLevel::Info);

  sns::runtime::RuntimeOptions options;
  options.threads = args.threads;
  options.udp_batch = args.udp_batch;
  options.answer_cache = args.answer_cache;
  options.spatial = args.spatial;
  options.spatial_backend = args.spatial_backend;
  sns::runtime::ServerRuntime runtime("snsd", options);

  std::unique_ptr<sns::federation::EdgeNameserver> edge;
  std::vector<sns::server::ZoneViewPtr> zones;
  if (edge_mode) {
    auto primary = parse_host_port(args.edge_primary);
    if (!primary.ok()) {
      std::fprintf(stderr, "snsd: bad --edge endpoint: %s\n", primary.error().message.c_str());
      return 1;
    }
    sns::federation::EdgeOptions edge_options;
    edge_options.primary = primary.value();
    for (const auto& apex_text : args.mirror_apexes) {
      auto apex = sns::dns::Name::parse(apex_text);
      if (!apex.ok()) {
        std::fprintf(stderr, "snsd: bad --mirror apex '%s': %s\n", apex_text.c_str(),
                     apex.error().message.c_str());
        return 1;
      }
      edge_options.zones.push_back(apex.value());
    }
    edge_options.refresh_interval = std::chrono::milliseconds(std::max(args.refresh_ms, 0L));
    edge_options.expire_after = std::chrono::milliseconds(std::max(args.expire_ms, 0L));
    edge = std::make_unique<sns::federation::EdgeNameserver>(runtime, edge_options);
    auto synced = edge->initial_sync();
    if (!synced.ok()) {
      std::fprintf(stderr, "snsd: %s\n", synced.error().message.c_str());
      return 1;
    }
    zones = std::move(synced).value();
  } else {
    auto loaded = load_zone_set(args);
    if (!loaded.ok()) {
      std::fprintf(stderr, "snsd: %s\n", loaded.error().message.c_str());
      return 1;
    }
    zones = std::move(loaded).value();
  }

  auto listen = sns::transport::Endpoint::parse(args.listen, args.port);
  if (!listen.ok()) {
    std::fprintf(stderr, "snsd: bad listen address: %s\n", listen.error().message.c_str());
    return 1;
  }
  if (auto started = runtime.start(listen.value(), zones); !started.ok()) {
    std::fprintf(stderr, "snsd: %s\n", started.error().message.c_str());
    return 1;
  }
  if (edge != nullptr) {
    if (auto started = edge->start(); !started.ok()) {
      std::fprintf(stderr, "snsd: %s\n", started.error().message.c_str());
      return 1;
    }
  }

  if (!args.port_file.empty()) {
    std::ofstream pf(args.port_file, std::ios::trunc);
    pf << runtime.local().port << '\n';
  }
  std::size_t records = 0;
  for (const auto& zone : zones) records += zone->record_count();
  std::fprintf(stderr, "snsd: serving %zu zone%s (%zu records%s) on %s (udp+tcp, %zu worker%s)\n",
               zones.size(), zones.size() == 1 ? "" : "s", records,
               edge_mode ? ", edge mirror" : "", runtime.local().to_string().c_str(),
               runtime.worker_count(), runtime.worker_count() == 1 ? "" : "s");

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGUSR1, on_signal);
  std::signal(SIGHUP, on_signal);

  // The workers own the event loops; the main thread is a pure control
  // plane polling signal flags and the periodic-dump clock.
  constexpr auto kPoll = std::chrono::milliseconds(50);
  auto next_dump = std::chrono::steady_clock::now() +
                   std::chrono::seconds(std::max(args.metrics_dump_seconds, 0L));
  while (!g_stop.load()) {
    std::this_thread::sleep_for(kPoll);
    if (g_dump_metrics.exchange(false)) dump_metrics(args, runtime);
    if (args.metrics_dump_seconds > 0 && std::chrono::steady_clock::now() >= next_dump) {
      next_dump += std::chrono::seconds(args.metrics_dump_seconds);
      dump_metrics(args, runtime);
    }
    if (g_reload.exchange(false)) {
      if (edge != nullptr) {
        // Edge mode has no files to re-read; SIGHUP means "sync now".
        edge->poke();
        continue;
      }
      // SIGHUP live reload: parse off to the side, publish atomically.
      // A broken file must never take down serving — the old snapshot
      // stays live and the failure is logged + counted instead.
      std::size_t old_records = runtime.snapshot()->record_count();
      auto fresh = load_zone_set(args);
      if (!fresh.ok()) {
        runtime.metrics().counter("runtime.zone.reload_failed").add();
        std::fprintf(stderr, "snsd: zone reload failed (still serving old data): %s\n",
                     fresh.error().message.c_str());
        continue;
      }
      std::size_t new_records = 0;
      for (const auto& zone : fresh.value()) new_records += zone->record_count();
      std::uint64_t generation = runtime.publish(fresh.value());
      runtime.metrics().counter("runtime.zone.reload").add();
      std::fprintf(stderr, "snsd: reloaded %zu zone%s: %zu -> %zu records (generation %llu)\n",
                   fresh.value().size(), fresh.value().size() == 1 ? "" : "s", old_records,
                   new_records, static_cast<unsigned long long>(generation));
    }
  }

  // Fleet totals must be summed before the workers are torn down.
  if (edge != nullptr) edge->stop();
  sns::obs::MetricsRegistry totals;
  runtime.merge_metrics(totals);
  std::uint64_t served = totals.counter_value("server.queries").value_or(0);
  runtime.drain_and_stop();
  std::fprintf(stderr, "snsd: shutting down after %llu queries\n",
               static_cast<unsigned long long>(served));
  return 0;
}
