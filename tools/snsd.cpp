// snsd — the Spatial Name System daemon.
//
// Loads a master-file zone (including the paper's Table 1 extended
// types: LOC, BDADDR, WIFI, LORA, DTMF) and serves it authoritatively
// over real UDP and TCP sockets via the transport subsystem. This is
// the deployment story of §4.1 made concrete: an SNS zone is an
// ordinary DNS zone, and snsd is an ordinary (small) DNS server.
//
//   snsd --zone office.loc --listen 127.0.0.1 --port 5353
//
// Operational surface:
//   SIGUSR1          dump the obs::MetricsRegistry snapshot as JSON
//   --metrics-dump N dump the same JSON every N seconds
//   --port-file P    write the realised port (for --port 0) to P,
//                    which is how the loopback integration test finds us
//   SIGINT/SIGTERM   graceful shutdown

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "dns/master.hpp"
#include "obs/metrics.hpp"
#include "server/authoritative.hpp"
#include "transport/dns_server.hpp"
#include "transport/event_loop.hpp"
#include "util/log.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump_metrics = 0;

void on_signal(int sig) {
  if (sig == SIGUSR1)
    g_dump_metrics = 1;
  else
    g_stop = 1;
}

struct Args {
  std::string zone_file;
  std::string origin = ".";
  std::string listen = "127.0.0.1";
  std::uint16_t port = 5353;
  std::string port_file;
  std::string metrics_file;  // empty = stderr
  long metrics_dump_seconds = 0;
  bool verbose = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --zone FILE [options]\n"
               "  --zone FILE          master-file zone to serve (required)\n"
               "  --origin NAME        $ORIGIN applied before the file's own (default .)\n"
               "  --listen ADDR        IPv4 address to bind (default 127.0.0.1)\n"
               "  --port N             UDP+TCP port; 0 picks an ephemeral port (default 5353)\n"
               "  --port-file PATH     write the realised port to PATH once bound\n"
               "  --metrics-dump N     dump metrics JSON every N seconds\n"
               "  --metrics-file PATH  metrics JSON destination (default stderr)\n"
               "  --verbose            info-level logging\n",
               argv0);
  return 2;
}

void dump_metrics(const Args& args, sns::obs::MetricsRegistry& metrics) {
  std::string json = metrics.to_json();
  if (args.metrics_file.empty()) {
    std::fprintf(stderr, "%s\n", json.c_str());
    return;
  }
  std::ofstream out(args.metrics_file, std::ios::trunc);
  out << json << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* value = nullptr;
    if (arg == "--zone" && (value = next()))
      args.zone_file = value;
    else if (arg == "--origin" && (value = next()))
      args.origin = value;
    else if (arg == "--listen" && (value = next()))
      args.listen = value;
    else if (arg == "--port" && (value = next()))
      args.port = static_cast<std::uint16_t>(std::atoi(value));
    else if (arg == "--port-file" && (value = next()))
      args.port_file = value;
    else if (arg == "--metrics-dump" && (value = next()))
      args.metrics_dump_seconds = std::atol(value);
    else if (arg == "--metrics-file" && (value = next()))
      args.metrics_file = value;
    else if (arg == "--verbose")
      args.verbose = true;
    else
      return usage(argv[0]);
  }
  if (args.zone_file.empty()) return usage(argv[0]);
  if (args.verbose) sns::util::set_log_level(sns::util::LogLevel::Info);

  // --- load the zone -------------------------------------------------------
  std::ifstream in(args.zone_file);
  if (!in) {
    std::fprintf(stderr, "snsd: cannot read zone file %s\n", args.zone_file.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  auto origin = sns::dns::Name::parse(args.origin);
  if (!origin.ok()) {
    std::fprintf(stderr, "snsd: bad origin: %s\n", origin.error().message.c_str());
    return 1;
  }
  auto records = sns::dns::parse_master_file(text.str(), origin.value());
  if (!records.ok()) {
    std::fprintf(stderr, "snsd: zone parse error: %s\n", records.error().message.c_str());
    return 1;
  }

  // The SOA owner is the apex; serve exactly that zone.
  const sns::dns::ResourceRecord* soa = nullptr;
  for (const auto& rr : records.value())
    if (rr.type == sns::dns::RRType::SOA) {
      soa = &rr;
      break;
    }
  if (soa == nullptr) {
    std::fprintf(stderr, "snsd: zone file has no SOA record\n");
    return 1;
  }
  auto* soa_data = std::get_if<sns::dns::SoaData>(&soa->rdata);
  auto zone = std::make_shared<sns::server::Zone>(
      soa->name, soa_data != nullptr ? soa_data->mname : soa->name);
  if (auto loaded = zone->load(records.value()); !loaded.ok()) {
    std::fprintf(stderr, "snsd: zone load error: %s\n", loaded.error().message.c_str());
    return 1;
  }

  // --- engine + transport --------------------------------------------------
  auto& metrics = sns::obs::MetricsRegistry::global();
  sns::server::AuthoritativeServer server("snsd");
  server.add_zone(zone);
  server.set_metrics(&metrics);

  sns::transport::EventLoop loop;
  if (!loop.valid()) {
    std::fprintf(stderr, "snsd: event loop init failed\n");
    return 1;
  }
  sns::transport::DnsTransportServer transport(
      loop,
      [&server](const sns::dns::Message& query, const sns::transport::Endpoint&,
                sns::transport::Via) {
        // Real clients are outside every spatial view; split-horizon
        // deployments would map source addresses to richer contexts here.
        return server.handle(query, sns::server::ClientContext{});
      });
  transport.set_metrics(&metrics);

  auto listen = sns::transport::Endpoint::parse(args.listen, args.port);
  if (!listen.ok()) {
    std::fprintf(stderr, "snsd: bad listen address: %s\n", listen.error().message.c_str());
    return 1;
  }
  if (auto started = transport.start(listen.value()); !started.ok()) {
    std::fprintf(stderr, "snsd: %s\n", started.error().message.c_str());
    return 1;
  }

  if (!args.port_file.empty()) {
    std::ofstream pf(args.port_file, std::ios::trunc);
    pf << transport.local().port << '\n';
  }
  std::fprintf(stderr, "snsd: serving %s (%zu records) on %s (udp+tcp)\n",
               zone->apex().to_string().c_str(), zone->record_count(),
               transport.local().to_string().c_str());

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGUSR1, on_signal);

  if (args.metrics_dump_seconds > 0) {
    // Self-rescheduling wheel timer — the real-socket analogue of the
    // simulator's recurring beacon events.
    std::function<void()> periodic = [&] {
      dump_metrics(args, metrics);
      loop.schedule_after(std::chrono::seconds(args.metrics_dump_seconds), periodic);
    };
    loop.schedule_after(std::chrono::seconds(args.metrics_dump_seconds), periodic);
  }

  while (g_stop == 0) {
    loop.run_once(200);  // short cap so signal flags are polled promptly
    if (g_dump_metrics != 0) {
      g_dump_metrics = 0;
      dump_metrics(args, metrics);
    }
  }
  std::fprintf(stderr, "snsd: shutting down after %llu queries\n",
               static_cast<unsigned long long>(server.queries_served()));
  transport.close();
  return 0;
}
