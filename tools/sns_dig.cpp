// sns-dig — query client for the Spatial Name System.
//
// dig-flavoured CLI over the transport subsystem's blocking client.
// Prints answers in presentation format — including the SNS extended
// types (LOC, BDADDR, WIFI, LORA, DTMF) — and implements the RFC 7766
// truncation dance: a UDP answer with TC=1 is transparently retried
// over TCP, which is exactly the path the snsd/TcpListener pair exists
// to serve.
//
// Reverse geodetic queries ride the same machinery: `+area=` issues an
// AREA query whose bounding box travels in the additional section and
// prints every matched device with its LOC in presentation format.
//
//   sns-dig @127.0.0.1 -p 5353 mic.oval-office.1600.penn-ave.washington.dc.usa.loc BDADDR
//   sns-dig @127.0.0.1 -p 5353 big.office.loc TXT +bufsize=512
//   sns-dig @127.0.0.1 -p 5353 office.loc SOA +tcp
//   sns-dig @127.0.0.1 -p 5353 city.loc +area=38.88,-77.05,38.92,-77.00
//
// `+trace` resolves iteratively instead: the @server is treated as the
// fabric root, referrals are followed (racing every candidate
// nameserver per wave) and each hop is printed as it happens — the
// live twin of `dig +trace` for a federated .loc deployment.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dns/message.hpp"
#include "dns/rdata.hpp"
#include "federation/resolver.hpp"
#include "spatial/area.hpp"
#include "transport/client.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [@server] [-p port] name [type] [+flags]\n"
               "  @server        server IPv4 address (default 127.0.0.1)\n"
               "  -p port        server port (default 53)\n"
               "  type           RR type mnemonic (default A; LOC/BDADDR/WIFI/LORA/DTMF work)\n"
               "  +tcp           query over TCP from the start\n"
               "  +short         print only the answer rdata, one per line\n"
               "  +norecurse     clear the RD bit\n"
               "  +bufsize=N     EDNS0 advertised UDP payload (0 disables EDNS)\n"
               "  +timeout=MS    per-attempt timeout in milliseconds (default 2000)\n"
               "  +tries=N       UDP attempts (default 2)\n"
               "  +area=S,W,N,E  reverse geodetic query: devices under `name` inside\n"
               "                 the box minlat,minlon,maxlat,maxlon (type is ignored)\n"
               "  +trace         iterate from @server as the fabric root, following\n"
               "                 referrals (glue ports default to -p) and printing hops\n",
               argv0);
  return 2;
}

/// Parse "minlat,minlon,maxlat,maxlon" (degrees). Range/order checks
/// are left to the server — watching it answer FORMERR is part of what
/// this tool is for.
bool parse_area_arg(const char* text, sns::geo::BoundingBox& box) {
  double* fields[4] = {&box.min_lat, &box.min_lon, &box.max_lat, &box.max_lon};
  const char* cursor = text;
  for (int i = 0; i < 4; ++i) {
    char* end = nullptr;
    *fields[i] = std::strtod(cursor, &end);
    if (end == cursor) return false;
    cursor = end;
    if (i < 3) {
      if (*cursor != ',') return false;
      ++cursor;
    }
  }
  return *cursor == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::string server_addr = "127.0.0.1";
  std::uint16_t port = 53;
  std::string name_text;
  std::string type_text = "A";
  bool force_tcp = false;
  bool short_output = false;
  bool recurse = true;
  bool trace = false;
  bool have_area = false;
  sns::geo::BoundingBox area;
  int positional = 0;
  sns::transport::QueryOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.starts_with('@')) {
      server_addr = std::string(arg.substr(1));
    } else if (arg == "-p") {
      if (i + 1 >= argc) return usage(argv[0]);
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "+tcp" || arg == "+vc") {
      force_tcp = true;
    } else if (arg == "+short") {
      short_output = true;
    } else if (arg == "+norecurse") {
      recurse = false;
    } else if (arg == "+trace") {
      trace = true;
    } else if (arg.starts_with("+bufsize=")) {
      options.edns_udp_size = static_cast<std::uint16_t>(std::atoi(argv[i] + 9));
    } else if (arg.starts_with("+timeout=")) {
      options.timeout = std::chrono::milliseconds(std::atol(argv[i] + 9));
    } else if (arg.starts_with("+tries=")) {
      options.attempts = std::atoi(argv[i] + 7);
    } else if (arg.starts_with("+area=")) {
      if (!parse_area_arg(argv[i] + 6, area)) {
        std::fprintf(stderr, ";; bad +area= box (want minlat,minlon,maxlat,maxlon)\n");
        return 2;
      }
      have_area = true;
    } else if (arg.starts_with('+') || arg.starts_with('-')) {
      return usage(argv[0]);
    } else if (positional == 0) {
      name_text = std::string(arg);
      ++positional;
    } else if (positional == 1) {
      type_text = std::string(arg);
      ++positional;
    } else {
      return usage(argv[0]);
    }
  }
  if (name_text.empty()) return usage(argv[0]);

  auto server = sns::transport::Endpoint::parse(server_addr, port);
  if (!server.ok()) {
    std::fprintf(stderr, ";; bad server address: %s\n", server.error().message.c_str());
    return 2;
  }
  auto name = sns::dns::Name::parse(name_text);
  if (!name.ok()) {
    std::fprintf(stderr, ";; bad name: %s\n", name.error().message.c_str());
    return 2;
  }
  auto type = sns::dns::rrtype_from_string(type_text);
  if (!type.ok()) {
    std::fprintf(stderr, ";; bad type: %s\n", type.error().message.c_str());
    return 2;
  }

  if (trace) {
    if (have_area) {
      std::fprintf(stderr, ";; +trace and +area= do not combine\n");
      return 2;
    }
    sns::federation::ResolveOptions resolve_options;
    resolve_options.query = options;
    // Glue addresses carry no port; assume the fabric shares the port
    // of the root we were aimed at (see resolver.hpp).
    resolve_options.glue_port = port;
    sns::federation::IterativeClient client({server.value()}, resolve_options);
    auto started = std::chrono::steady_clock::now();
    auto resolved = client.resolve(
        name.value(), type.value(), [](const sns::federation::TraceHop& hop) {
          std::printf(";; %s @%s (%zu raced, %lld us)%s\n", hop.zone.to_string().c_str(),
                      hop.winner.to_string().c_str(), hop.servers.size(),
                      static_cast<long long>(hop.rtt.count()),
                      hop.referral ? "" : " [authoritative]");
          if (hop.referral)
            for (const auto& rr : hop.response.authorities)
              std::printf(";;   %s %s\n", rr.name.to_string().c_str(),
                          sns::dns::rdata_to_string(rr.rdata).c_str());
        });
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    if (!resolved.ok()) {
      std::fprintf(stderr, ";; resolution failed: %s\n", resolved.error().message.c_str());
      return 1;
    }
    const auto& answer = resolved.value();
    if (short_output) {
      for (const auto& rr : answer.response.answers)
        std::printf("%s\n", sns::dns::rdata_to_string(rr.rdata).c_str());
    } else {
      std::printf("%s", answer.response.to_string().c_str());
      std::printf(";; Referrals: %d, waves: %d, servers raced: %d\n", answer.referrals,
                  answer.waves, answer.raced);
      std::printf(";; Query time: %lld msec\n", static_cast<long long>(elapsed.count()));
    }
    return 0;
  }

  // Transaction id from the monotonic clock: unpredictable enough for a
  // diagnostic CLI (the id-match check in the client rejects strays).
  auto ticks = std::chrono::steady_clock::now().time_since_epoch().count();
  auto id = static_cast<std::uint16_t>((static_cast<std::uint64_t>(ticks) >> 4) & 0xffff);
  auto query = have_area ? sns::spatial::make_area_query(id, name.value(), area)
                         : sns::dns::make_query(id, name.value(), type.value(), recurse);

  auto started = std::chrono::steady_clock::now();
  auto result = sns::transport::query_auto(server.value(), query, options, force_tcp);
  auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                                            started);
  if (!result.ok()) {
    std::fprintf(stderr, ";; no reply from %s: %s\n", server.value().to_string().c_str(),
                 result.error().message.c_str());
    return 1;
  }
  const auto& outcome = result.value();

  if (outcome.retried_tcp) std::printf(";; Truncated, retrying over TCP\n");
  // An AREA query that comes back with an error rcode has no useful
  // answer section in any output mode — fail the exit status so
  // scripts using +short still see the refusal.
  if (have_area && outcome.response.header.rcode != sns::dns::Rcode::NoError) {
    std::fprintf(stderr, ";; AREA query refused: rcode=%u\n",
                 static_cast<unsigned>(outcome.response.header.rcode));
    return 1;
  }
  if (have_area && !short_output) {
    // Device-centric rendering: one matched device per line with its
    // LOC in RFC 1876 presentation format.
    const auto& response = outcome.response;
    std::printf(";; %zu device(s) in [%.7f,%.7f %.7f,%.7f]\n", response.answers.size(),
                area.min_lat, area.min_lon, area.max_lat, area.max_lon);
    for (const auto& rr : response.answers)
      std::printf("%s %s\n", rr.name.to_string().c_str(),
                  sns::dns::rdata_to_string(rr.rdata).c_str());
    std::printf(";; Query time: %lld msec\n", static_cast<long long>(elapsed.count()));
    std::printf(";; SERVER: %s (%s)\n", server.value().to_string().c_str(),
                outcome.used_tcp ? "tcp" : "udp");
    return 0;
  }
  if (short_output) {
    for (const auto& rr : outcome.response.answers)
      std::printf("%s\n", sns::dns::rdata_to_string(rr.rdata).c_str());
  } else {
    std::printf("%s", outcome.response.to_string().c_str());
    std::printf(";; Query time: %lld msec\n", static_cast<long long>(elapsed.count()));
    std::printf(";; SERVER: %s (%s)\n", server.value().to_string().c_str(),
                outcome.used_tcp ? "tcp" : "udp");
    std::printf(";; MSG SIZE rcvd: %zu\n", outcome.response.encode().size());
  }
  return 0;
}
