// E9 — §3.2's global geodetic resolution: iterative descent down the
// spatial hierarchy ("operating like normal iterative DNS"), and border
// ambiguity ("multiple spatial domains, which it can then pursue
// concurrently").
//
// Two sweeps:
//   * depth 1..6: a chain of nested zones; latency and queries per depth;
//   * fan-out 1..4: a point on the k-corner of k adjacent zones.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/deployment.hpp"

using namespace sns;

namespace {

double to_ms(net::Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

// Build a chain deployment: zone_1 contains zone_2 contains ... zone_k,
// with a sensor in the innermost zone.
struct Chain {
  std::unique_ptr<core::SnsDeployment> deployment;
  net::NodeId client;
  geo::GeoPoint target{5.0, 5.0, 0};

  explicit Chain(int depth, std::uint64_t seed) {
    deployment = std::make_unique<core::SnsDeployment>(seed);
    core::ZoneSite* parent = nullptr;
    double half = 5.0;
    core::CivicName civic = core::CivicName::from_components({"level1"}).value();
    for (int level = 1; level <= depth; ++level) {
      geo::BoundingBox box{5.0 - half, 5.0 - half, 5.0 + half, 5.0 + half};
      core::ZoneOptions options;
      options.uplink = parent == nullptr ? net::wan_link(net::ms(40)) : net::wan_link(net::ms(8));
      core::ZoneSite& site = deployment->add_zone(civic, box, parent, options);
      parent = &site;
      half /= 2.0;
      if (level < depth) civic = civic.child("level" + std::to_string(level + 1)).value();
    }
    core::Device sensor;
    sensor.function = "sensor";
    sensor.position = target;
    (void)deployment->add_device(*parent, sensor);
    client = deployment->network().add_node("client");
    deployment->network().connect(client, deployment->loc_node(), net::wan_link(net::ms(20)));
  }
};

// k zones around the origin corner; query point exactly on the corner.
struct Corner {
  std::unique_ptr<core::SnsDeployment> deployment;
  net::NodeId client;

  explicit Corner(int k, std::uint64_t seed) {
    deployment = std::make_unique<core::SnsDeployment>(seed);
    geo::BoundingBox quadrants[4] = {
        {0, 0, 10, 10}, {0, -10, 10, 0}, {-10, -10, 0, 0}, {-10, 0, 0, 10}};
    const char* names[4] = {"northeast", "northwest", "southwest", "southeast"};
    for (int i = 0; i < k; ++i) {
      auto civic = core::CivicName::from_components({names[i]}).value();
      core::ZoneSite& site = deployment->add_zone(civic, quadrants[i], nullptr);
      core::Device sensor;
      sensor.function = "sensor";
      sensor.position = quadrants[i].center();
      (void)deployment->add_device(site, sensor);
    }
    client = deployment->network().add_node("client");
    deployment->network().connect(client, deployment->loc_node(), net::wan_link(net::ms(20)));
  }
};

void print_tables() {
  std::printf("E9 / global geodetic descent\n");
  std::printf("depth sweep (nested zones, sensor in the innermost):\n");
  std::printf("%6s %10s %10s %12s %8s\n", "depth", "zones", "queries", "latency ms",
              "found");
  for (int depth = 1; depth <= 6; ++depth) {
    Chain chain(depth, static_cast<std::uint64_t>(depth) * 13);
    auto geo_client = chain.deployment->make_geodetic_client(chain.client);
    auto result = geo_client.resolve_point(chain.target, 0.01);
    if (!result.ok()) {
      std::printf("%6d %10s\n", depth, "FAILED");
      continue;
    }
    std::printf("%6d %10d %10d %12.1f %8zu\n", depth, result.value().zones_visited,
                result.value().queries_sent, to_ms(result.value().latency),
                result.value().names.size());
  }

  std::printf("\nborder fan-out sweep (query point on the shared corner):\n");
  std::printf("%6s %10s %10s %12s %8s\n", "zones", "fanout", "queries", "latency ms",
              "found");
  for (int k = 1; k <= 4; ++k) {
    Corner corner(k, static_cast<std::uint64_t>(k) * 31);
    auto geo_client = corner.deployment->make_geodetic_client(corner.client);
    // A query box big enough to overlap every quadrant's sensor.
    auto answer = geo_client.resolve_area(geo::BoundingBox{-6, -6, 6, 6});
    if (!answer.ok()) {
      std::printf("%6d %10s\n", k, "FAILED");
      continue;
    }
    // Concurrent pursuit: latency stays ~flat as fan-out grows even
    // though the number of queries grows linearly.
    std::printf("%6d %10d %10d %12.1f %8zu\n", k, answer.value().fanout_max,
                answer.value().queries_sent, to_ms(answer.value().latency),
                answer.value().names.size());
  }
  std::printf("\n");

  // Machine-readable export: the geodetic client is driven through the
  // deployment's instrumented network, so one descent leaves a
  // net.exchange span per hop plus the per-hop latency histogram.
  Chain chain(4, 71);
  auto geo_client = chain.deployment->make_geodetic_client(chain.client);
  (void)geo_client.resolve_point(chain.target, 0.01);
  std::printf("E9 span trees: %s\n", chain.deployment->tracer().to_json().c_str());
  std::printf("E9 metrics: %s\n\n", chain.deployment->metrics().to_json().c_str());
}

void bench_descent(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Chain chain(depth, 99);
  auto geo_client = chain.deployment->make_geodetic_client(chain.client);
  for (auto _ : state) {
    auto result = geo_client.resolve_point(chain.target, 0.01);
    if (!result.ok()) state.SkipWithError("descent failed");
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(bench_descent)->DenseRange(1, 6);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
