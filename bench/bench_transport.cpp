// bench_transport — the real-socket serving path, measured in queries/sec.
//
// Everything bench_hotpath measures happens in simulated time; this
// driver pins numbers on the part the simulator cannot see: the epoll
// event loop, UDP datagram handling and RFC 7766 TCP framing, measured
// over the loopback interface with snsd's exact serving stack
// (AuthoritativeServer behind DnsTransportServer). Three stages:
//
//   udp_loopback        blocking client, one datagram round trip per op
//   tcp_reuse           one TCP connection, framed query per op
//   tcp_connect_per_q   fresh TCP connect + query + close per op
//
// The reuse-vs-reconnect pair quantifies why sns-dig keeps its retry
// connection open. Output mirrors BENCH_hotpath.json:
//
//   { "bench": "transport", "date": "...", "config": {...},
//     "results": [ {"name": ..., "ops": ..., "seconds": ...,
//                   "qps": ..., "p50_ns": ..., "p90_ns": ..., "p99_ns": ...} ] }
//
// A second mode, `bench_transport --runtime [out.json] [scale]`, drives
// the multi-core serving runtime (src/runtime/) instead: M client
// threads hammer a ServerRuntime with 1 and then N SO_REUSEPORT worker
// shards, writing BENCH_runtime.json. Row names encode the topology
// (udp_shard4_c8 = 4 shards, 8 client threads); the shard1_c1 row is
// the serial baseline comparable to udp_loopback above.
//
// A third mode, `bench_transport --churn [out.json] [scale]`, measures
// the paper's mobility workload end to end: a fleet of device records
// re-homing through RFC 2136 dynamic updates (delete + add in one
// UPDATE) against a live runtime while reader threads keep querying,
// swept over 1k/10k/100k-record zones. Each size also times the
// pre-redesign deep-copy baseline (rebuild the whole zone from its
// canonical records, which is what every update used to cost) so the
// update row carries a speedup_vs_deepcopy field. Writes
// BENCH_update.json; scale 0 is CI smoke.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dns/master.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"
#include "server/authoritative.hpp"
#include "server/update.hpp"
#include "server/zone.hpp"
#include "transport/client.hpp"
#include "transport/dns_server.hpp"
#include "transport/event_loop.hpp"

using namespace sns;
using Clock = std::chrono::steady_clock;

namespace {

struct Row {
  std::string name;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  std::size_t shards = 0;        // runtime mode only; 0 = n/a
  std::size_t clients = 0;       // runtime mode only; 0 = n/a
  std::size_t zone_records = 0;  // churn mode only; 0 = n/a
  double deepcopy_qps = 0.0;     // churn mode only; 0 = n/a
  double speedup = 0.0;          // churn mode only; 0 = n/a
};

double elapsed_s(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

template <typename Op>
Row timed(const std::string& name, std::uint64_t ops, Op&& op) {
  obs::Histogram latency;
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    auto s = Clock::now();
    op(i);
    latency.record(
        static_cast<std::uint64_t>(std::chrono::nanoseconds(Clock::now() - s).count()));
  }
  Row row{name, ops, elapsed_s(t0), 0, latency.p50(), latency.p90(), latency.p99()};
  row.qps = static_cast<double>(ops) / row.seconds;
  return row;
}

constexpr std::string_view kZoneText = R"(
$ORIGIN bench.loc.
$TTL 300
@        IN SOA  ns hostmaster 1 3600 600 86400 60
@        IN NS   ns
ns       IN A    192.0.2.1
mic      IN BDADDR 01:23:45:67:89:ab
mic      IN WIFI  "bench-iot" 192.0.3.10
door     IN DTMF  42#
)";

[[noreturn]] void die(const char* what, const std::string& why) {
  std::fprintf(stderr, "bench_transport: %s: %s\n", what, why.c_str());
  std::exit(1);
}

std::shared_ptr<server::Zone> make_bench_zone() {
  auto records = dns::parse_master_file(kZoneText, dns::Name{});
  if (!records.ok()) die("zone parse", records.error().message);
  auto view = server::build_zone_view(dns::name_of("bench.loc"), std::move(records).value());
  if (!view.ok()) die("zone build", view.error().message);
  return std::make_shared<server::Zone>(std::move(view).value());
}

/// snsd's serving stack on an ephemeral loopback port, event loop on a
/// background thread. Lives for the whole benchmark run.
struct LoopbackServer {
  std::shared_ptr<server::Zone> zone;
  std::unique_ptr<server::AuthoritativeServer> engine;
  std::unique_ptr<transport::EventLoop> loop;
  std::unique_ptr<transport::DnsTransportServer> server;
  std::thread thread;
  transport::Endpoint at;

  LoopbackServer() {
    zone = make_bench_zone();
    engine = std::make_unique<server::AuthoritativeServer>("bench");
    engine->add_zone(zone);

    loop = std::make_unique<transport::EventLoop>();
    if (!loop->valid()) die("event loop", "init failed");
    server = std::make_unique<transport::DnsTransportServer>(
        *loop, [this](const dns::Message& query, const transport::Endpoint&, transport::Via) {
          return engine->handle(query, server::ClientContext{});
        });
    if (auto started = server->start(transport::loopback(0)); !started.ok())
      die("bind", started.error().message);
    at = server->local();
    thread = std::thread([this] { loop->run(); });
  }

  ~LoopbackServer() {
    loop->stop();
    thread.join();
    server->close();
  }
};

dns::Message query_of(std::uint64_t i) {
  return dns::make_query(static_cast<std::uint16_t>(i & 0xffff), dns::name_of("mic.bench.loc"),
                         dns::RRType::BDADDR);
}

constexpr auto kTimeout = std::chrono::milliseconds(2000);

Row bench_udp(LoopbackServer& srv, std::uint64_t ops) {
  transport::QueryOptions options;
  return timed("udp_loopback", ops, [&](std::uint64_t i) {
    auto response = transport::udp_query(srv.at, query_of(i), options);
    if (!response.ok() || response.value().answers.empty())
      die("udp_loopback", "query failed");
  });
}

Row bench_tcp_reuse(LoopbackServer& srv, std::uint64_t ops) {
  transport::TcpClient client;
  if (auto connected = client.connect(srv.at, kTimeout); !connected.ok())
    die("tcp connect", connected.error().message);
  return timed("tcp_reuse", ops, [&](std::uint64_t i) {
    auto response = client.query(query_of(i), kTimeout);
    if (!response.ok() || response.value().answers.empty())
      die("tcp_reuse", "query failed");
  });
}

Row bench_tcp_connect_per_query(LoopbackServer& srv, std::uint64_t ops) {
  transport::QueryOptions options;
  return timed("tcp_connect_per_q", ops, [&](std::uint64_t i) {
    auto response = transport::tcp_query(srv.at, query_of(i), options);
    if (!response.ok() || response.value().answers.empty())
      die("tcp_connect_per_q", "query failed");
  });
}

// --runtime mode: the multi-core serving runtime under a multi-threaded
// load generator. Each client thread runs its own blocking socket loop;
// the shared Histogram is safe to record into concurrently (atomic
// buckets, see obs/metrics.hpp).

/// M client threads, each firing `ops_per_client` queries back to back.
/// `via_tcp` selects one framed connection per client (reuse pattern)
/// versus one UDP socket per query.
Row bench_runtime(const std::string& name, const transport::Endpoint& at, std::size_t shards,
                  std::size_t clients, std::uint64_t ops_per_client, bool via_tcp) {
  obs::Histogram latency;
  std::atomic<std::uint64_t> failures{0};
  auto client_loop = [&](std::size_t c) {
    transport::QueryOptions options;
    std::unique_ptr<transport::TcpClient> tcp;
    if (via_tcp) {
      tcp = std::make_unique<transport::TcpClient>();
      if (auto connected = tcp->connect(at, kTimeout); !connected.ok()) {
        failures.fetch_add(ops_per_client);
        return;
      }
    }
    for (std::uint64_t i = 0; i < ops_per_client; ++i) {
      auto query = query_of(c * ops_per_client + i);
      auto s = Clock::now();
      auto response = via_tcp ? tcp->query(query, kTimeout)
                              : transport::udp_query(at, query, options);
      latency.record(
          static_cast<std::uint64_t>(std::chrono::nanoseconds(Clock::now() - s).count()));
      if (!response.ok() || response.value().answers.empty()) failures.fetch_add(1);
    }
  };

  auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) threads.emplace_back(client_loop, c);
  for (auto& t : threads) t.join();
  double seconds = elapsed_s(t0);

  if (failures.load() != 0) die(name.c_str(), "lost or failed queries under load");
  std::uint64_t ops = ops_per_client * clients;
  Row row{name, ops, seconds, 0, latency.p50(), latency.p90(), latency.p99(), shards, clients};
  row.qps = static_cast<double>(ops) / seconds;
  return row;
}

// The pipelined stage: the blocking one-query-per-round-trip client
// above is latency-bound (every op pays a full send→wake→recv round
// trip), which hides what the batched drain + answer cache buy on the
// server. This generator keeps `window` queries outstanding per client
// over one *connected* UDP socket — batching sends and receives with
// sendmmsg/recvmmsg where available — so the server's recvmmsg rounds
// actually fill and the per-datagram serving cost becomes the limit.
// This is the real-DNS-operations shape (dnsperf and friends measure
// authoritative servers exactly this way).

/// Ids carry slot (low byte) + generation (high byte): a retransmitted
/// slot bumps the generation, so a late duplicate of the original reply
/// cannot complete the slot's *next* query.
struct PipeSlot {
  util::Bytes wire;
  Clock::time_point sent;
  std::uint16_t id = 0;
  bool active = false;
};

Row bench_runtime_pipelined(const std::string& name, const transport::Endpoint& at,
                            std::size_t shards, std::size_t clients,
                            std::uint64_t ops_per_client, std::size_t window) {
  obs::Histogram latency;
  std::atomic<std::uint64_t> failures{0};

  auto client_loop = [&](std::size_t /*c*/) {
    int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
    sockaddr_in sa{};
    at.to_sockaddr(sa);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      if (fd >= 0) ::close(fd);
      failures.fetch_add(1);
      return;
    }
    timeval tv{0, 50 * 1000};  // stall detector: retransmit after 50 ms
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::vector<PipeSlot> slots(window);
    std::vector<std::size_t> to_send;  // slot indices owing a (re)send
    to_send.reserve(window);
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t stalls = 0;
    std::vector<std::uint8_t> gen(window, 0);

    auto arm = [&](std::size_t s) {
      ++gen[s];
      std::uint16_t id = static_cast<std::uint16_t>((gen[s] << 8) | (s & 0xff));
      slots[s].wire = dns::make_query(id, dns::name_of("mic.bench.loc"),
                                      dns::RRType::BDADDR)
                          .encode();
      slots[s].id = id;
      slots[s].active = true;
      to_send.push_back(s);
      ++issued;
    };

    auto flush_sends = [&] {
      if (to_send.empty()) return true;
#if defined(__linux__)
      std::vector<mmsghdr> msgs(to_send.size());
      std::vector<iovec> iovs(to_send.size());
      for (std::size_t i = 0; i < to_send.size(); ++i) {
        PipeSlot& slot = slots[to_send[i]];
        iovs[i] = {slot.wire.data(), slot.wire.size()};
        msgs[i] = {};
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      std::size_t done = 0;
      while (done < msgs.size()) {
        int n = ::sendmmsg(fd, msgs.data() + done, static_cast<unsigned>(msgs.size() - done),
                           0);
        if (n < 0) {
          if (errno == EINTR) continue;
          return false;
        }
        done += static_cast<std::size_t>(n);
      }
#else
      for (std::size_t s : to_send)
        if (::send(fd, slots[s].wire.data(), slots[s].wire.size(), 0) < 0) return false;
#endif
      auto now = Clock::now();
      for (std::size_t s : to_send) slots[s].sent = now;
      to_send.clear();
      return true;
    };

    auto complete = [&](std::span<const std::uint8_t> reply) {
      if (reply.size() < 12) return;
      std::uint16_t id = static_cast<std::uint16_t>((reply[0] << 8) | reply[1]);
      std::size_t s = id & 0xff;
      if (s >= window || !slots[s].active || slots[s].id != id) return;  // stale duplicate
      if ((reply[3] & 0x0f) != 0 || reply[7] == 0) {  // rcode != NoError or ancount == 0
        failures.fetch_add(1);
      }
      latency.record(static_cast<std::uint64_t>(
          std::chrono::nanoseconds(Clock::now() - slots[s].sent).count()));
      slots[s].active = false;
      ++completed;
      if (issued < ops_per_client) arm(s);
    };

    for (std::size_t s = 0; s < window && issued < ops_per_client; ++s) arm(s);

    while (completed < issued || !to_send.empty()) {
      if (!flush_sends()) {
        failures.fetch_add(issued - completed);
        break;
      }
#if defined(__linux__)
      constexpr unsigned kRecvBatch = 64;
      std::uint8_t bufs[kRecvBatch][512];
      mmsghdr msgs[kRecvBatch];
      iovec iovs[kRecvBatch];
      for (unsigned i = 0; i < kRecvBatch; ++i) {
        iovs[i] = {bufs[i], sizeof(bufs[i])};
        msgs[i] = {};
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      // Block (SO_RCVTIMEO-bounded) for the first reply of the round,
      // then drain whatever else already arrived without blocking.
      int n = ::recvmmsg(fd, msgs, kRecvBatch, MSG_WAITFORONE, nullptr);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Stall: everything outstanding was lost (or the server is
          // wedged); retransmit the whole window.
          if (++stalls > 200) {
            failures.fetch_add(issued - completed);
            break;
          }
          for (std::size_t s = 0; s < window; ++s)
            if (slots[s].active) to_send.push_back(s);
          continue;
        }
        failures.fetch_add(issued - completed);
        break;
      }
      for (int i = 0; i < n; ++i) complete(std::span(bufs[i], msgs[i].msg_len));
#else
      std::uint8_t buf[512];
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (++stalls > 200) {
            failures.fetch_add(issued - completed);
            break;
          }
          for (std::size_t s = 0; s < window; ++s)
            if (slots[s].active) to_send.push_back(s);
          continue;
        }
        failures.fetch_add(issued - completed);
        break;
      }
      complete(std::span(buf, static_cast<std::size_t>(n)));
#endif
    }
    ::close(fd);
  };

  auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) threads.emplace_back(client_loop, c);
  for (auto& t : threads) t.join();
  double seconds = elapsed_s(t0);

  if (failures.load() != 0) die(name.c_str(), "lost or failed queries under pipelined load");
  std::uint64_t ops = ops_per_client * clients;
  Row row{name, ops, seconds, 0, latency.p50(), latency.p90(), latency.p99(), shards, clients};
  row.qps = static_cast<double>(ops) / seconds;
  return row;
}

/// Start a runtime with `shards` workers on an ephemeral loopback port,
/// run the UDP and TCP load stages against it, tear it down.
void bench_runtime_topology(std::vector<Row>& rows, std::size_t shards, std::size_t clients,
                            std::uint64_t ops_per_client, std::uint64_t pipelined_ops) {
  runtime::RuntimeOptions options;
  options.threads = shards;
  runtime::ServerRuntime rt("bench", options);
  if (auto started = rt.start(transport::loopback(0), {make_bench_zone()->view()}); !started.ok())
    die("runtime start", started.error().message);
  auto label = [&](const char* proto, std::size_t c) {
    return std::string(proto) + "_shard" + std::to_string(shards) + "_c" + std::to_string(c);
  };
  rows.push_back(bench_runtime(label("udp", clients), rt.local(), shards, clients,
                               ops_per_client, /*via_tcp=*/false));
  rows.push_back(bench_runtime(label("tcp", clients), rt.local(), shards, clients,
                               ops_per_client, /*via_tcp=*/true));
  // One pipelined generator thread, 64 outstanding: on a single-core
  // box more client threads only steal cycles from the serving shard,
  // and one windowed client already saturates the batched drain.
  rows.push_back(bench_runtime_pipelined(label("udp_pipe64", 1), rt.local(), shards, 1,
                                         pipelined_ops, /*window=*/64));
  rt.drain_and_stop();
}

// ---- churn mode (BENCH_update.json) ----------------------------------

dns::Name device_name(std::size_t i) {
  return dns::name_of("dev" + std::to_string(i) + ".churn.loc");
}

server::ZoneViewPtr make_device_zone(std::size_t devices) {
  const auto apex = dns::name_of("churn.loc");
  server::ZoneBuilder builder(apex);
  (void)builder.add(dns::make_soa(apex, dns::name_of("ns.churn.loc"), 1));
  (void)builder.add(dns::make_ns(apex, dns::name_of("ns.churn.loc")));
  (void)builder.add(dns::make_a(dns::name_of("ns.churn.loc"), net::Ipv4Addr{{192, 0, 2, 1}}));
  for (std::size_t i = 0; i < devices; ++i)
    (void)builder.add(dns::make_txt(device_name(i), {"home-0"}));
  auto view = std::move(builder).build();
  if (!view.ok()) die("churn zone build", view.error().message);
  return std::move(view).value();
}

/// One device re-homing: delete its TXT RRset and add the new home in
/// a single UPDATE message (the §4.1 mobility op).
dns::Message make_rehome(std::uint16_t id, const dns::Name& apex, const dns::Name& dev,
                         std::uint64_t generation) {
  auto msg = server::make_update_add(
      id, apex, dns::make_txt(dev, {"home-" + std::to_string(generation)}));
  auto del = server::make_update_delete_rrset(id, apex, dev, dns::RRType::TXT);
  msg.authorities.insert(msg.authorities.begin(), del.authorities.begin(),
                         del.authorities.end());
  return msg;
}

void bench_churn_size(std::vector<Row>& rows, std::size_t devices, std::uint64_t updates,
                      std::size_t readers) {
  auto view = make_device_zone(devices);
  const auto apex = view->apex();

  // Deep-copy baseline: what every accepted update cost before the
  // immutable-zone redesign — rebuild the entire zone from its
  // canonical record stream.
  double deepcopy_qps;
  {
    auto records = view->all_records();
    int trials = devices >= 50'000 ? 3 : 10;
    auto t0 = Clock::now();
    for (int i = 0; i < trials; ++i) {
      auto rebuilt = server::build_zone_view(apex, records);
      if (!rebuilt.ok()) die("baseline rebuild", rebuilt.error().message);
    }
    deepcopy_qps = trials / elapsed_s(t0);
  }

  runtime::RuntimeOptions options;
  options.threads = 2;
  runtime::ServerRuntime rt("churn", options);
  if (auto started = rt.start(transport::loopback(0), {view}); !started.ok())
    die("churn runtime start", started.error().message);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0}, read_failures{0};
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(readers);
  for (std::size_t r = 0; r < readers; ++r)
    reader_threads.emplace_back([&, r] {
      // Stride through the fleet; every queried device always exists
      // (the delete+add lands atomically in one snapshot flip).
      std::uint64_t i = r;
      auto id = static_cast<std::uint16_t>(0x4000 + r);
      while (!done.load(std::memory_order_acquire)) {
        auto name = device_name((i++ * 7919) % devices);
        auto got = transport::udp_query(rt.local(), dns::make_query(id, name, dns::RRType::TXT));
        if (!got.ok() || got.value().answers.size() != 1) read_failures.fetch_add(1);
        reads.fetch_add(1);
      }
    });

  obs::Histogram latency;
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < updates; ++i) {
    auto dev = device_name(i % devices);
    auto s = Clock::now();
    auto ack = transport::udp_query(rt.local(),
                                    make_rehome(static_cast<std::uint16_t>(i), apex, dev, i + 1));
    latency.record(
        static_cast<std::uint64_t>(std::chrono::nanoseconds(Clock::now() - s).count()));
    if (!ack.ok()) die("churn update", ack.error().message);
    if (ack.value().header.rcode != dns::Rcode::NoError)
      die("churn update", "rcode " + dns::to_string(ack.value().header.rcode));
  }
  double seconds = elapsed_s(t0);
  done.store(true, std::memory_order_release);
  for (auto& t : reader_threads) t.join();

  if (read_failures.load() != 0) die("churn reads", "reader saw a missing or torn record");
  auto final_serial = rt.snapshot()->zones.front()->serial();
  if (final_serial != 1 + updates) die("churn serial", "commit lost under churn");
  rt.drain_and_stop();

  std::string prefix = "churn_" + std::to_string(devices);
  Row up{prefix + "_update", updates, seconds, 0, latency.p50(), latency.p90(), latency.p99(),
         options.threads, readers, devices + 3, deepcopy_qps, 0};
  up.qps = static_cast<double>(updates) / seconds;
  up.speedup = up.qps / deepcopy_qps;
  rows.push_back(up);
  Row rd{prefix + "_read", reads.load(), seconds, 0, 0, 0, 0, options.threads, readers,
         devices + 3, 0, 0};
  rd.qps = static_cast<double>(reads.load()) / seconds;
  rows.push_back(rd);
}

std::string today() {
  std::time_t t = std::time(nullptr);
  char buf[16];
  std::tm tm{};
  gmtime_r(&t, &tm);
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
  return buf;
}

void write_json(const std::string& path, const char* bench_name, const std::vector<Row>& rows) {
  obs::JsonWriter json;
  json.begin_object();
  json.field("bench", bench_name);
  json.field("date", today());
  json.begin_object("config");
  json.field("interface", "loopback");
  json.field("zone_records", std::int64_t{6});
  json.field("hardware_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.field("udp_batch", static_cast<std::uint64_t>(transport::kUdpBatchDefault));
  json.field("answer_cache", runtime::RuntimeOptions{}.answer_cache);
  json.field("build", SNS_BUILD_TYPE);
  json.end_object();
  json.begin_array("results");
  for (const auto& row : rows) {
    json.begin_object();
    json.field("name", row.name);
    json.field("ops", static_cast<std::uint64_t>(row.ops));
    json.field("seconds", row.seconds);
    json.field("qps", row.qps);
    json.field("p50_ns", row.p50_ns);
    json.field("p90_ns", row.p90_ns);
    json.field("p99_ns", row.p99_ns);
    if (row.shards != 0) {
      json.field("shards", static_cast<std::uint64_t>(row.shards));
      json.field("clients", static_cast<std::uint64_t>(row.clients));
    }
    if (row.zone_records != 0)
      json.field("zone_records", static_cast<std::uint64_t>(row.zone_records));
    if (row.deepcopy_qps != 0.0) {
      json.field("deepcopy_baseline_qps", row.deepcopy_qps);
      json.field("speedup_vs_deepcopy", row.speedup);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(json.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%-20s %12s %10s %12s %10s %10s %10s\n", "stage", "ops", "seconds", "qps", "p50 ns",
              "p90 ns", "p99 ns");
  for (const auto& row : rows)
    std::printf("%-20s %12llu %10.3f %12.0f %10.0f %10.0f %10.0f\n", row.name.c_str(),
                static_cast<unsigned long long>(row.ops), row.seconds, row.qps, row.p50_ns,
                row.p90_ns, row.p99_ns);
}

}  // namespace

int main(int argc, char** argv) {
  std::string_view mode = argc > 1 ? std::string_view(argv[1]) : std::string_view{};
  bool runtime_mode = mode == "--runtime";
  bool churn_mode = mode == "--churn";
  int arg0 = (runtime_mode || churn_mode) ? 2 : 1;
  std::string out_path = argc > arg0 ? argv[arg0]
                         : churn_mode ? "BENCH_update.json"
                         : runtime_mode ? "BENCH_runtime.json"
                                        : "BENCH_transport.json";
  std::uint64_t scale = argc > arg0 + 1 ? std::strtoull(argv[arg0 + 1], nullptr, 10) : 1;

  std::vector<Row> rows;
  if (churn_mode) {
    // Mobility churn: device records re-homing via RFC 2136 while
    // readers serve, swept over zone sizes. Scale 0 is CI smoke —
    // one small size, enough updates to cross a few snapshot flips.
    constexpr std::size_t kReaders = 2;
    if (scale == 0) {
      bench_churn_size(rows, 1'000, 300, kReaders);
    } else {
      for (std::size_t devices : {std::size_t{1'000}, std::size_t{10'000}, std::size_t{100'000}})
        bench_churn_size(rows, devices, 2'000 * scale, kReaders);
    }
    print_rows(rows);
    write_json(out_path, "update_churn", rows);
    return 0;
  }
  if (runtime_mode) {
    // Topology sweep: serial baseline, then concurrency on one shard,
    // then the same concurrency fanned across SO_REUSEPORT shards, each
    // with a pipelined-window stage that keeps the batched UDP drain
    // fed. On a multi-core box the sharded rows multiply; on one core
    // the pipelined rows are where the batching + answer-cache win
    // shows. Scale 0 is CI smoke: tiny op counts, pass/fail only.
    bool smoke = scale == 0;
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) die("hardware_threads", "hardware_concurrency() reported 0");
    std::size_t shards = std::max<std::size_t>(2, hw);
    std::size_t clients = std::max<std::size_t>(8, 2 * shards);
    std::uint64_t per_client = smoke ? 200 : 4'000 * scale;
    std::uint64_t serial = smoke ? 500 : 16'000 * scale;
    std::uint64_t pipelined = smoke ? 2'000 : 256'000 * scale;
    bench_runtime_topology(rows, 1, 1, serial, pipelined);
    bench_runtime_topology(rows, 1, clients, per_client, pipelined);
    bench_runtime_topology(rows, shards, clients, per_client, pipelined);
    // The sharded rows only mean something when the box has the cores
    // to run the shards: assert scaling on multi-core, and say so out
    // loud (not silently pass) when a 1-core runner cannot judge it.
    if (hw > 1) {
      double single = 0, sharded = 0;
      for (const auto& row : rows) {
        if (row.clients != clients || row.name.rfind("udp_shard", 0) != 0) continue;
        (row.shards > 1 ? sharded : single) = row.qps;
      }
      if (single <= 0 || sharded <= 0) die("runtime rows", "topology sweep rows missing");
      if (sharded < 0.5 * single)
        die("shard scaling", std::to_string(shards) + " shards at " + std::to_string(sharded) +
                                 " qps vs 1 shard at " + std::to_string(single) + " qps");
    } else {
      std::printf("SKIP: shard-scaling assertion (hardware_threads=1)\n");
    }
    print_rows(rows);
    write_json(out_path, "runtime", rows);
    return 0;
  }

  LoopbackServer srv;
  std::printf("serving bench.loc on %s\n", srv.at.to_string().c_str());

  rows.push_back(bench_udp(srv, 30'000 * scale));
  rows.push_back(bench_tcp_reuse(srv, 30'000 * scale));
  rows.push_back(bench_tcp_connect_per_query(srv, 5'000 * scale));

  print_rows(rows);
  write_json(out_path, "transport", rows);
  return 0;
}
