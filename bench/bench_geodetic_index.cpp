// E5 — §3.2's complexity claim: "A naive solution … would be O(n) for n
// devices. Instead … space-filling curves … logarithmic complexity …
// alternatives such as R-trees may be more efficient for sparse
// locations."
//
// Sweeps n over 16..65536 devices (uniform and clustered placement) and
// measures area-query latency for naive scan, Hilbert-interval index,
// R-tree and quadtree. The shape to reproduce: naive grows linearly,
// the others stay ~flat/logarithmic, with a small-n crossover where
// naive wins.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

#include "geo/hilbert_index.hpp"
#include "geo/naive_index.hpp"
#include "geo/quadtree.hpp"
#include "geo/rtree.hpp"
#include "util/rng.hpp"

using namespace sns;

namespace {

const geo::BoundingBox kDomain{0, 0, 10, 10};

enum class Dist { Uniform, Clustered };

std::unique_ptr<geo::SpatialIndex> make_index(int kind) {
  switch (kind) {
    case 0: return std::make_unique<geo::NaiveIndex>();
    case 1: return std::make_unique<geo::HilbertIndex>(kDomain, 10);
    case 2: return std::make_unique<geo::RTree>();
    default: return std::make_unique<geo::Quadtree>(kDomain);
  }
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "naive";
    case 1: return "hilbert";
    case 2: return "rtree";
    default: return "quadtree";
  }
}

void populate(geo::SpatialIndex& index, std::size_t n, Dist dist, util::Rng& rng) {
  if (dist == Dist::Uniform) {
    for (geo::EntryId id = 0; id < n; ++id)
      index.insert(id, {rng.next_double(0, 10), rng.next_double(0, 10), 0});
    return;
  }
  // Clustered: sqrt(n) clusters of sqrt(n) devices (buildings of rooms).
  std::size_t clusters = std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(n)));
  geo::EntryId id = 0;
  while (id < n) {
    double clat = rng.next_double(0.5, 9.5), clon = rng.next_double(0.5, 9.5);
    for (std::size_t i = 0; i < clusters && id < n; ++i, ++id) {
      index.insert(id, {std::clamp(clat + rng.next_gaussian(0, 0.03), 0.0, 10.0),
                        std::clamp(clon + rng.next_gaussian(0, 0.03), 0.0, 10.0), 0});
    }
  }
}

// The AR-style query: a small area (a room within a city-scale domain).
geo::BoundingBox sample_query(util::Rng& rng) {
  double lat = rng.next_double(0, 9.8), lon = rng.next_double(0, 9.8);
  return geo::BoundingBox{lat, lon, lat + 0.2, lon + 0.2};
}

void bench_query(benchmark::State& state) {
  int kind = static_cast<int>(state.range(0));
  auto n = static_cast<std::size_t>(state.range(1));
  Dist dist = state.range(2) == 0 ? Dist::Uniform : Dist::Clustered;
  state.SetLabel(std::string(kind_name(kind)) + "/" +
                 (dist == Dist::Uniform ? "uniform" : "clustered") + "/n=" +
                 std::to_string(n));
  util::Rng rng(1234);
  auto index = make_index(kind);
  populate(*index, n, dist, rng);
  util::Rng query_rng(99);
  std::size_t results = 0;
  for (auto _ : state) {
    auto found = index->query(sample_query(query_rng));
    results += found.size();
    benchmark::DoNotOptimize(found.data());
  }
  state.counters["hits/query"] =
      benchmark::Counter(static_cast<double>(results), benchmark::Counter::kAvgIterations);
}

void register_query_benchmarks() {
  for (int kind = 0; kind < 4; ++kind)
    for (std::int64_t n : {16, 64, 256, 1024, 4096, 16384, 65536})
      for (std::int64_t dist : {0, 1})
        benchmark::RegisterBenchmark("query", bench_query)->Args({kind, n, dist});
}

void bench_insert(benchmark::State& state) {
  int kind = static_cast<int>(state.range(0));
  state.SetLabel(std::string(kind_name(kind)) + "/insert-into-16k");
  util::Rng rng(5);
  auto index = make_index(kind);
  populate(*index, 16384, Dist::Uniform, rng);
  geo::EntryId next = 1u << 20;
  for (auto _ : state) {
    index->insert(next, {rng.next_double(0, 10), rng.next_double(0, 10), 0});
    ++next;
  }
}

void register_insert_benchmarks() {
  for (int kind = 0; kind < 4; ++kind)
    benchmark::RegisterBenchmark("insert", bench_insert)->Args({kind});
}

// Headline summary the paper's argument rests on: time per query at
// n=65536 relative to naive.
void print_summary() {
  std::printf("E5 / geodetic index scaling — devices in a 0.2x0.2deg area query\n");
  std::printf("%10s", "n");
  for (int kind = 0; kind < 4; ++kind) std::printf(" %14s", kind_name(kind));
  std::printf("   (mean us/query, uniform)\n");
  for (std::size_t n : {16u, 256u, 4096u, 65536u}) {
    std::printf("%10zu", n);
    for (int kind = 0; kind < 4; ++kind) {
      util::Rng rng(1234);
      auto index = make_index(kind);
      populate(*index, n, Dist::Uniform, rng);
      util::Rng query_rng(99);
      auto start = std::chrono::steady_clock::now();
      int reps = n > 16384 ? 200 : 2000;
      std::size_t sink = 0;
      for (int i = 0; i < reps; ++i) sink += index->query(sample_query(query_rng)).size();
      auto elapsed = std::chrono::steady_clock::now() - start;
      double us_per_query =
          std::chrono::duration<double, std::micro>(elapsed).count() / reps;
      std::printf(" %14.2f", us_per_query);
      benchmark::DoNotOptimize(sink);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  register_query_benchmarks();
  register_insert_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
