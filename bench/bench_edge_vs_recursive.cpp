// E7 — §4.2's edge-deployment claim: "By moving the responsibility of
// DNS operations to the edge of the network, we can support low-latency
// name resolution for local devices as well as offline operation."
//
// Same query (the Oval Office display), three resolution paths:
//   * edge:      stub -> room edge nameserver (LAN);
//   * iterative (cold): full descent from the root over the WAN;
//   * iterative (warm): same resolver with a populated cache.
// Plus the offline ablation: WAN cut, edge still answers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "core/deployment.hpp"

using namespace sns;

namespace {

double to_ms(net::Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

void print_table() {
  std::printf("E7 / edge vs recursive resolution of %s\n",
              "display.oval-office.1600.penn-ave.washington.dc.usa.loc");
  std::printf("%-24s %12s %12s %10s\n", "path", "median ms", "p95 ms", "queries");

  // Gather samples across seeds.
  std::vector<double> edge_ms, cold_ms, warm_ms;
  int cold_queries = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto world = core::make_white_house_world(seed);
    auto& d = *world.deployment;

    net::NodeId local = d.add_client("headset", *world.oval_office, true);
    auto stub = d.make_stub(local, *world.oval_office);
    auto edge = stub.resolve(world.display, dns::RRType::A);
    if (edge.ok()) edge_ms.push_back(to_ms(edge.value().stats.latency));

    net::NodeId remote = d.add_client("remote", *world.cabinet_room, false);
    auto iterative = d.make_iterative(remote);
    resolver::DnsCache cache;
    iterative.set_cache(&cache);
    auto cold = iterative.resolve(world.display, dns::RRType::AAAA);
    if (cold.ok()) {
      cold_ms.push_back(to_ms(cold.value().stats.latency));
      cold_queries = cold.value().stats.queries_sent;
    }
    auto warm = iterative.resolve(world.display, dns::RRType::AAAA);
    if (warm.ok()) warm_ms.push_back(to_ms(warm.value().stats.latency));
  }

  auto stats = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return std::pair{v.empty() ? 0.0 : v[v.size() / 2],
                     v.empty() ? 0.0 : v[v.size() * 95 / 100]};
  };
  auto [edge_median, edge_p95] = stats(edge_ms);
  auto [cold_median, cold_p95] = stats(cold_ms);
  auto [warm_median, warm_p95] = stats(warm_ms);
  std::printf("%-24s %12.3f %12.3f %10d\n", "edge (LAN stub)", edge_median, edge_p95, 1);
  std::printf("%-24s %12.1f %12.1f %10d\n", "iterative cold (WAN)", cold_median, cold_p95,
              cold_queries);
  std::printf("%-24s %12.3f %12.3f %10d\n", "iterative warm (cache)", warm_median, warm_p95, 0);
  std::printf("edge vs cold speedup: %.0fx\n\n", cold_median / std::max(edge_median, 1e-9));

  // Offline ablation.
  auto world = core::make_white_house_world(77);
  auto& d = *world.deployment;
  net::NodeId local = d.add_client("headset", *world.oval_office, true);
  auto stub = d.make_stub(local, *world.oval_office);
  d.network().set_link_down(world.white_house->ns_node, world.penn_ave->ns_node, true);
  auto offline_local = stub.resolve(world.speaker, dns::RRType::BDADDR);
  net::NodeId remote = d.add_client("remote", *world.cabinet_room, false);
  auto iterative = d.make_iterative(remote);
  auto offline_remote = iterative.resolve(world.display, dns::RRType::AAAA);
  std::printf("offline ablation (building uplink cut):\n");
  std::printf("  local edge resolution:   %s\n",
              offline_local.ok() && offline_local.value().stats.rcode == dns::Rcode::NoError
                  ? "still works"
                  : "FAILED");
  std::printf("  remote iterative:        %s\n\n",
              offline_remote.ok() ? "unexpectedly worked" : "fails (as expected)");
}

// Machine-readable export: one instrumented cold+warm pair, dumped as a
// span tree (per-hop timing) and the deployment's metric snapshot
// (cache hit/miss counters, per-hop latency percentiles).
void dump_observability() {
  auto world = core::make_white_house_world(99);
  auto& d = *world.deployment;
  net::NodeId remote = d.add_client("remote", *world.cabinet_room, false);
  auto iterative = d.make_iterative(remote);
  resolver::DnsCache cache;
  cache.set_metrics(&d.metrics());
  iterative.set_cache(&cache);
  (void)iterative.resolve(world.display, dns::RRType::AAAA);  // cold: full descent
  (void)iterative.resolve(world.display, dns::RRType::AAAA);  // warm: cache hit
  if (!d.tracer().roots().empty())
    std::printf("E7 cold span tree: %s\n",
                obs::Tracer::span_to_json(d.tracer().roots().front()).c_str());
  std::printf("E7 metrics: %s\n\n", d.metrics().to_json().c_str());
}

void bench_edge_resolution(benchmark::State& state) {
  auto world = core::make_white_house_world(5);
  auto& d = *world.deployment;
  net::NodeId local = d.add_client("headset", *world.oval_office, true);
  auto stub = d.make_stub(local, *world.oval_office);
  for (auto _ : state) {
    auto result = stub.resolve(world.display, dns::RRType::A);
    if (!result.ok()) state.SkipWithError("edge resolution failed");
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(bench_edge_resolution);

void bench_iterative_resolution(benchmark::State& state) {
  auto world = core::make_white_house_world(6);
  auto& d = *world.deployment;
  net::NodeId remote = d.add_client("remote", *world.cabinet_room, false);
  auto iterative = d.make_iterative(remote);
  for (auto _ : state) {
    auto result = iterative.resolve(world.display, dns::RRType::AAAA);
    if (!result.ok()) state.SkipWithError("iterative resolution failed");
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(bench_iterative_resolution);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  dump_observability();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
