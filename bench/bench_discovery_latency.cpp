// E6 — §1's latency claim: "the layers inherent in existing service
// discovery mechanisms mean that it can take seconds or even minutes to
// discover devices, whereas AR headsets must perform lookups in
// milliseconds."
//
// Same simulated room, same services, two discovery paths:
//   * legacy: mDNS/DNS-SD multicast browse (listening windows, RFC 6762
//     response delays, unreliable multicast);
//   * SNS: unicast DNS-SD against the room's edge nameserver.
// Reported in *virtual* milliseconds (the simulator accounts latency
// exactly); swept over wireless loss rates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "resolver/browse.hpp"
#include "server/authoritative.hpp"
#include "server/mdns.hpp"

using namespace sns;

namespace {

constexpr int kServices = 5;

struct Room {
  net::Network network;
  net::NodeId browser;
  net::NodeId edge_ns;
  std::vector<net::NodeId> devices;
  std::unique_ptr<sns::server::AuthoritativeServer> edge_server;
  std::shared_ptr<server::Zone> zone;
  std::vector<std::unique_ptr<server::MdnsResponder>> responders;
  dns::Name domain = dns::name_of("oval-office.loc");

  explicit Room(std::uint64_t seed, double loss) : network(seed) {
    browser = network.add_node("browser");
    edge_ns = network.add_node("edge-ns");
    network.connect(browser, edge_ns, net::wireless_link(loss));
    network.join_group(server::kMdnsGroup, browser);

    zone = std::make_shared<server::Zone>(domain, dns::name_of("ns.oval-office.loc"));
    edge_server = std::make_unique<sns::server::AuthoritativeServer>("edge");
    edge_server->add_zone(zone);
    edge_server->bind_to_network(network, edge_ns, [](net::NodeId) {
      server::ClientContext ctx;
      ctx.internal = true;
      return ctx;
    });

    for (int i = 0; i < kServices; ++i) {
      net::NodeId device = network.add_node("device" + std::to_string(i));
      network.connect(browser, device, net::wireless_link(loss));
      network.connect(device, edge_ns, net::wireless_link(loss));
      devices.push_back(device);

      server::ServiceInstance service;
      service.instance = "Device " + std::to_string(i);
      service.service_type = "_sns._udp";
      service.domain = domain;
      service.host = dns::name_of("device" + std::to_string(i) + ".oval-office.loc");
      service.port = static_cast<std::uint16_t>(6000 + i);
      service.txt = {"id=" + std::to_string(i)};

      // Publish both ways: into the edge zone (SNS path) and as an mDNS
      // responder (legacy path).
      (void)server::publish_service(*zone, service);
      auto responder = std::make_unique<server::MdnsResponder>(network, device);
      responder->publish(service);
      responders.push_back(std::move(responder));
    }
    // NOTE: MdnsResponder owns each device's datagram handler — devices
    // only answer mDNS here; unicast DNS-SD is served by edge_ns.
  }
};

struct Sample {
  double total_ms;
  std::size_t found;
};

Sample run_mdns(std::uint64_t seed, double loss) {
  Room room(seed, loss);
  auto before = room.network.clock().now();
  auto result = resolver::browse_mdns(room.network, room.browser, "_sns._udp", room.domain,
                                      net::ms(1000));
  auto elapsed = room.network.clock().now() - before;
  return {std::chrono::duration<double, std::milli>(elapsed).count(),
          result.ok() ? result.value().services.size() : 0};
}

Sample run_sns(std::uint64_t seed, double loss) {
  Room room(seed, loss);
  resolver::StubResolver stub(room.network, room.browser, room.edge_ns);
  // Edge-tuned client: the nameserver is one LAN hop away, so use a
  // short retransmit timer instead of the 2 s WAN default.
  stub.set_timeout(net::ms(50), 8);
  auto before = room.network.clock().now();
  auto result = resolver::browse_unicast(stub, "_sns._udp", room.domain);
  auto elapsed = room.network.clock().now() - before;
  return {std::chrono::duration<double, std::milli>(elapsed).count(),
          result.ok() ? result.value().services.size() : 0};
}

// A single AR-style lookup (one name) for the headline "milliseconds"
// number, including a cached repeat.
void print_table() {
  std::printf("E6 / discovery latency — legacy mDNS browse vs SNS edge lookup\n");
  std::printf("%8s %22s %22s %16s\n", "loss", "mDNS browse (ms)", "SNS browse (ms)",
              "speedup");
  for (double loss : {0.0, 0.01, 0.05}) {
    std::vector<double> mdns_ms, sns_ms;
    std::size_t mdns_found = 0, sns_found = 0;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      auto m = run_mdns(seed, loss);
      auto s = run_sns(seed * 101, loss);
      mdns_ms.push_back(m.total_ms);
      sns_ms.push_back(s.total_ms);
      mdns_found += m.found;
      sns_found += s.found;
    }
    auto median = [](std::vector<double>& v) {
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    double mdns_median = median(mdns_ms);
    double sns_median = median(sns_ms);
    std::printf("%7.0f%% %15.1f (%zu/75) %15.1f (%zu/75) %15.0fx\n", loss * 100, mdns_median,
                mdns_found, sns_median, sns_found, mdns_median / sns_median);
  }

  // Single-name AR lookup.
  Room room(7, 0.0);
  resolver::StubResolver stub(room.network, room.browser, room.edge_ns);
  resolver::DnsCache cache;
  stub.set_cache(&cache);
  auto first = stub.resolve(dns::name_of("device0.oval-office.loc"), dns::RRType::SRV);
  auto second = stub.resolve(dns::name_of("device0.oval-office.loc"), dns::RRType::SRV);
  if (first.ok() && second.ok()) {
    std::printf("\nsingle AR-style lookup: cold %.2f ms, cached %.3f ms\n",
                std::chrono::duration<double, std::milli>(first.value().stats.latency).count(),
                std::chrono::duration<double, std::milli>(second.value().stats.latency).count());
  }
  std::printf("\n");
}

// CPU-time cost of serving one DNS-SD browse on the edge server.
void bench_edge_serving_cost(benchmark::State& state) {
  Room room(3, 0.0);
  dns::Message query = dns::make_query(1, dns::name_of("_sns._udp.oval-office.loc"),
                                       dns::RRType::PTR);
  server::ClientContext ctx;
  ctx.internal = true;
  for (auto _ : state) {
    auto response = room.edge_server->handle(query, ctx);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(bench_edge_serving_cost);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
