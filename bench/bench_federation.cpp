// bench_federation — the paper's deployment story, end to end, over
// real sockets: a civic delegation tree (country → city → street →
// building, ≥1k zones at full scale) served by four ServerRuntimes on
// distinct loopback addresses sharing one port (glue carries no port),
// an IterativeClient descending the referral chain, an IXFR-fed edge
// converging on a churning building primary, and finally a partition
// phase where the edge must keep answering from stale data (RFC 8767).
//
// Unlike bench_transport this is a *scenario* bench: every phase also
// asserts the federation invariants (descent depth ≥ 3, zero full
// transfers after initial sync under steady churn, ≥99% answered
// during the outage) and exits non-zero when one fails — the CI smoke
// run (scale 0) is a pass/fail gate, the full run writes
// BENCH_federation.json.
//
// usage: bench_federation [out.json [scale]]   scale 0 = CI smoke

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "federation/edge.hpp"
#include "federation/resolver.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"
#include "server/zone.hpp"
#include "transport/client.hpp"
#include "util/rng.hpp"

using namespace sns;
using Clock = std::chrono::steady_clock;

namespace {

struct Row {
  std::string name;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  std::uint64_t zones = 0;         // tree row: zones served
  std::uint64_t referrals = 0;     // cold row: delegation depth proven
  std::uint64_t axfr = 0;          // converge row: full transfers (initial sync only)
  std::uint64_t ixfr = 0;          // converge row: delta transfers applied
  std::uint64_t answered = 0;      // partition row: answers during outage
  std::uint64_t stale_serves = 0;  // partition row: counted stale answers
  double stale_ratio = 0.0;        // partition row: answered / ops
};

[[noreturn]] void die(const char* what, const std::string& why) {
  std::fprintf(stderr, "bench_federation: %s: %s\n", what, why.c_str());
  std::exit(1);
}

double elapsed_s(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

transport::Endpoint at(const char* addr, std::uint16_t port) {
  auto parsed = transport::Endpoint::parse(addr, port);
  if (!parsed.ok()) die("endpoint", parsed.error().message);
  return parsed.value();
}

/// The four serving roles share one port across distinct loopback
/// addresses, mirroring tests/integration/federation_cli.sh: A glue
/// carries no port, so every nameserver in the fabric must answer on
/// the port the root realised.
constexpr const char* kRootAddr = "127.1.0.1";
constexpr const char* kCityAddr = "127.1.0.2";
constexpr const char* kStreetAddr = "127.1.0.3";
constexpr const char* kBuildingAddr = "127.1.0.4";
constexpr const char* kEdgeAddr = "127.1.0.5";

net::Ipv4Addr glue_of(const char* addr) {
  net::Ipv4Addr ip{};
  if (std::sscanf(addr, "%hhu.%hhu.%hhu.%hhu", &ip.octets[0], &ip.octets[1], &ip.octets[2],
                  &ip.octets[3]) != 4)
    die("glue", addr);
  return ip;
}

struct TreeShape {
  std::size_t cities = 10;
  std::size_t streets_per_city = 33;
  std::size_t buildings_per_street = 3;
  [[nodiscard]] std::size_t zone_count() const {
    std::size_t streets = cities * streets_per_city;
    return 1 + cities + streets + streets * buildings_per_street;
  }
};

/// Civic tree of master views: country.loc at the root, each level
/// delegating the next (NS + glue at every cut) to the address of the
/// runtime that serves that level.
struct CivicTree {
  std::vector<server::ZoneViewPtr> root;       // country.loc
  std::vector<server::ZoneViewPtr> cities;     // c<i>.country.loc
  std::vector<server::ZoneViewPtr> streets;    // s<j>.c<i>.country.loc
  std::vector<server::ZoneViewPtr> buildings;  // b<k>.s<j>.c<i>.country.loc
  std::vector<dns::Name> building_apexes;
};

server::ZoneViewPtr must_build(server::ZoneBuilder builder) {
  auto view = std::move(builder).build();
  if (!view.ok()) die("zone build", view.error().message);
  return std::move(view).value();
}

void add_apex(server::ZoneBuilder& builder, const dns::Name& apex, const char* served_at) {
  dns::Name ns = dns::name_of("ns." + apex.to_string());
  (void)builder.add(dns::make_soa(apex, ns, 1));
  (void)builder.add(dns::make_ns(apex, ns));
  (void)builder.add(dns::make_a(ns, glue_of(served_at)));
}

void add_delegation(server::ZoneBuilder& builder, const dns::Name& child, const char* child_at) {
  dns::Name ns = dns::name_of("ns." + child.to_string());
  (void)builder.add(dns::make_ns(child, ns));
  (void)builder.add(dns::make_a(ns, glue_of(child_at)));
}

CivicTree grow_tree(const TreeShape& shape) {
  CivicTree tree;
  const dns::Name root_apex = dns::name_of("country.loc");
  server::ZoneBuilder root(root_apex);
  add_apex(root, root_apex, kRootAddr);

  for (std::size_t i = 0; i < shape.cities; ++i) {
    dns::Name city_apex = dns::name_of("c" + std::to_string(i) + ".country.loc");
    add_delegation(root, city_apex, kCityAddr);
    server::ZoneBuilder city(city_apex);
    add_apex(city, city_apex, kCityAddr);

    for (std::size_t j = 0; j < shape.streets_per_city; ++j) {
      dns::Name street_apex = dns::name_of("s" + std::to_string(j) + "." + city_apex.to_string());
      add_delegation(city, street_apex, kStreetAddr);
      server::ZoneBuilder street(street_apex);
      add_apex(street, street_apex, kStreetAddr);

      for (std::size_t k = 0; k < shape.buildings_per_street; ++k) {
        dns::Name building_apex =
            dns::name_of("b" + std::to_string(k) + "." + street_apex.to_string());
        add_delegation(street, building_apex, kBuildingAddr);
        server::ZoneBuilder building(building_apex);
        add_apex(building, building_apex, kBuildingAddr);
        (void)building.add(
            dns::make_txt(dns::name_of("door." + building_apex.to_string()), {"42#"}));
        (void)building.add(
            dns::make_txt(dns::name_of("cam." + building_apex.to_string()), {"recording"}));
        tree.buildings.push_back(must_build(std::move(building)));
        tree.building_apexes.push_back(building_apex);
      }
      tree.streets.push_back(must_build(std::move(street)));
    }
    tree.cities.push_back(must_build(std::move(city)));
  }
  tree.root.push_back(must_build(std::move(root)));
  return tree;
}

std::unique_ptr<runtime::ServerRuntime> serve(const char* name, const char* addr,
                                              std::uint16_t port,
                                              std::vector<server::ZoneViewPtr> views) {
  runtime::RuntimeOptions options;
  options.threads = 2;
  auto rt = std::make_unique<runtime::ServerRuntime>(name, options);
  if (auto started = rt->start(at(addr, port), std::move(views)); !started.ok())
    die(name, started.error().message);
  return rt;
}

std::uint32_t serial_of(runtime::ServerRuntime& rt, const dns::Name& apex) {
  auto snap = rt.snapshot();
  for (const auto& zone : snap->zones)
    if (zone->apex() == apex) return zone->serial();
  return 0;
}

std::uint64_t counter_of(runtime::ServerRuntime& rt, const char* name) {
  obs::MetricsRegistry totals;
  rt.merge_metrics(totals);
  return totals.counter_value(name).value_or(0);
}

/// Phase 2: full iterative descents from the country root. Every
/// resolve starts with a cold cache (fresh client) and must walk
/// country → city → street → building: exactly 3 referral hops.
Row bench_cold_descent(const transport::Endpoint& root, std::uint16_t glue_port,
                       const CivicTree& tree, std::uint64_t ops) {
  federation::ResolveOptions options;
  options.glue_port = glue_port;
  options.query.timeout = std::chrono::milliseconds(1000);
  obs::Histogram latency;
  util::Rng rng(17);
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto& apex =
        tree.building_apexes[rng.next_u64() % tree.building_apexes.size()];
    federation::IterativeClient client({root}, options);
    auto s = Clock::now();
    auto answer =
        client.resolve(dns::name_of("door." + apex.to_string()), dns::RRType::TXT);
    latency.record(
        static_cast<std::uint64_t>(std::chrono::nanoseconds(Clock::now() - s).count()));
    if (!answer.ok()) die("cold descent", answer.error().message);
    if (answer.value().referrals != 3)
      die("cold descent", "expected 3 delegation hops, got " +
                              std::to_string(answer.value().referrals));
    if (!answer.value().response.header.aa || answer.value().response.answers.empty())
      die("cold descent", "no authoritative answer for door." + apex.to_string());
  }
  Row row{"iterative_cold", ops, elapsed_s(t0), 0, latency.p50(), latency.p90(), latency.p99()};
  row.qps = static_cast<double>(ops) / row.seconds;
  row.referrals = 3;
  return row;
}

/// Phase 3: one client, warm referral cache — the AR-client steady
/// state where the second query for a street does not restart at the
/// country root.
Row bench_warm_descent(const transport::Endpoint& root, std::uint16_t glue_port,
                       const CivicTree& tree, std::uint64_t ops) {
  federation::ResolveOptions options;
  options.glue_port = glue_port;
  options.query.timeout = std::chrono::milliseconds(1000);
  federation::IterativeClient client({root}, options);
  obs::Histogram latency;
  util::Rng rng(23);
  std::uint64_t cached_starts = 0;
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto& apex =
        tree.building_apexes[rng.next_u64() % tree.building_apexes.size()];
    auto s = Clock::now();
    auto answer =
        client.resolve(dns::name_of("door." + apex.to_string()), dns::RRType::TXT);
    latency.record(
        static_cast<std::uint64_t>(std::chrono::nanoseconds(Clock::now() - s).count()));
    if (!answer.ok()) die("warm descent", answer.error().message);
    if (answer.value().response.answers.empty()) die("warm descent", "empty answer");
    if (answer.value().started_from_cache) ++cached_starts;
  }
  if (ops > 1 && cached_starts == 0)
    die("warm descent", "referral cache never engaged");
  Row row{"iterative_warm", ops, elapsed_s(t0), 0, latency.p50(), latency.p90(), latency.p99()};
  row.qps = static_cast<double>(ops) / row.seconds;
  return row;
}

std::string today() {
  std::time_t t = std::time(nullptr);
  char buf[16];
  std::tm tm{};
  gmtime_r(&t, &tm);
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
  return buf;
}

void write_json(const std::string& path, const TreeShape& shape, const std::vector<Row>& rows) {
  obs::JsonWriter json;
  json.begin_object();
  json.field("bench", "federation");
  json.field("date", today());
  json.begin_object("config");
  json.field("interface", "loopback");
  json.field("zones", static_cast<std::uint64_t>(shape.zone_count()));
  json.field("cities", static_cast<std::uint64_t>(shape.cities));
  json.field("streets_per_city", static_cast<std::uint64_t>(shape.streets_per_city));
  json.field("buildings_per_street", static_cast<std::uint64_t>(shape.buildings_per_street));
  json.field("hardware_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.field("build", SNS_BUILD_TYPE);
  json.end_object();
  json.begin_array("results");
  for (const auto& row : rows) {
    json.begin_object();
    json.field("name", row.name);
    json.field("ops", row.ops);
    json.field("seconds", row.seconds);
    json.field("qps", row.qps);
    json.field("p50_ns", row.p50_ns);
    json.field("p90_ns", row.p90_ns);
    json.field("p99_ns", row.p99_ns);
    if (row.zones != 0) json.field("zones", row.zones);
    if (row.referrals != 0) json.field("referrals", row.referrals);
    if (row.name == "ixfr_converge") {
      json.field("axfr", row.axfr);
      json.field("ixfr", row.ixfr);
    }
    if (row.name == "partition_stale") {
      json.field("answered", row.answered);
      json.field("stale_ratio", row.stale_ratio);
      json.field("stale_serves", row.stale_serves);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) die("write", path);
  std::fputs(json.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%-18s %10s %9s %10s %11s %11s %11s\n", "stage", "ops", "seconds", "qps", "p50 ns",
              "p90 ns", "p99 ns");
  for (const auto& row : rows)
    std::printf("%-18s %10llu %9.3f %10.0f %11.0f %11.0f %11.0f\n", row.name.c_str(),
                static_cast<unsigned long long>(row.ops), row.seconds, row.qps, row.p50_ns,
                row.p90_ns, row.p99_ns);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = argc > 1 ? argv[1] : "BENCH_federation.json";
  std::uint64_t scale = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  const bool smoke = scale == 0;

  TreeShape shape;
  if (smoke) shape = {2, 3, 2};  // 21 zones: enough for every invariant
  const std::uint64_t cold_ops = smoke ? 6 : 60;
  const std::uint64_t warm_ops = smoke ? 60 : 1'500 * scale;
  const std::size_t mirror_count = smoke ? 3 : 20;
  const int churn_rounds = smoke ? 4 : 30;
  const std::uint64_t partition_ops = smoke ? 300 : 2'000;

  std::vector<Row> rows;

  // Phase 1: grow the tree and bring the fabric up. The root realises
  // the shared port; every other role binds its own address to it.
  auto t0 = Clock::now();
  CivicTree tree = grow_tree(shape);
  auto root_rt = serve("root", kRootAddr, 0, tree.root);
  const std::uint16_t port = root_rt->local().port;
  auto city_rt = serve("cities", kCityAddr, port, tree.cities);
  auto street_rt = serve("streets", kStreetAddr, port, tree.streets);
  auto building_rt = serve("buildings", kBuildingAddr, port, tree.buildings);
  Row built{"tree_build", shape.zone_count(), elapsed_s(t0)};
  built.qps = static_cast<double>(built.ops) / built.seconds;
  built.zones = shape.zone_count();
  rows.push_back(built);
  std::printf("serving %zu zones on %s-%s:%u\n", shape.zone_count(), kRootAddr, kBuildingAddr,
              port);

  // Phases 2–3: iterative resolution through the live fabric.
  rows.push_back(bench_cold_descent(root_rt->local(), port, tree, cold_ops));
  rows.push_back(bench_warm_descent(root_rt->local(), port, tree, warm_ops));

  // Phase 4: an edge mirrors the first `mirror_count` building zones
  // and must track churn by IXFR alone after its initial full sync.
  std::vector<dns::Name> mirrored(tree.building_apexes.begin(),
                                  tree.building_apexes.begin() +
                                      static_cast<std::ptrdiff_t>(mirror_count));
  runtime::RuntimeOptions edge_rt_options;
  edge_rt_options.threads = 2;
  runtime::ServerRuntime edge_runtime("edge", edge_rt_options);
  federation::EdgeOptions edge_options;
  edge_options.primary = building_rt->local();
  edge_options.zones = mirrored;
  edge_options.refresh_interval = std::chrono::milliseconds(50);
  edge_options.expire_after = std::chrono::milliseconds(600);
  edge_options.query.timeout = std::chrono::milliseconds(250);
  federation::EdgeNameserver edge(edge_runtime, edge_options);
  auto mirror_views = edge.initial_sync();
  if (!mirror_views.ok()) die("initial sync", mirror_views.error().message);
  if (auto started = edge_runtime.start(at(kEdgeAddr, 0), std::move(mirror_views).value());
      !started.ok())
    die("edge start", started.error().message);
  if (auto started = edge.start(); !started.ok()) die("edge refresh", started.error().message);

  const std::set<dns::Name> mirror_set(mirrored.begin(), mirrored.end());
  t0 = Clock::now();
  for (int round = 0; round < churn_rounds; ++round) {
    building_rt->commit_zones([&](std::vector<std::shared_ptr<server::Zone>>& zones) {
      for (auto& zone : zones) {
        if (!mirror_set.contains(zone->apex())) continue;
        auto txn = zone->txn();
        (void)txn.add(dns::make_txt(
            dns::name_of("gen" + std::to_string(round) + "." + zone->apex().to_string()),
            {"churn"}));
        (void)zone->commit(std::move(txn));
      }
      return true;
    });
    // Let refresh polls interleave with the commit stream so the edge
    // tracks a *moving* primary, not one final state.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  bool converged = false;
  for (int i = 0; i < 200 && !converged; ++i) {
    converged = true;
    for (const auto& apex : mirrored)
      if (serial_of(edge_runtime, apex) != serial_of(*building_rt, apex)) {
        converged = false;
        break;
      }
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!converged) die("converge", "edge never caught up with the churning primary");
  Row converge{"ixfr_converge",
               static_cast<std::uint64_t>(churn_rounds) * mirror_count, elapsed_s(t0)};
  converge.qps = static_cast<double>(converge.ops) / converge.seconds;
  converge.axfr = counter_of(edge_runtime, "federation.refresh.axfr");
  converge.ixfr = counter_of(edge_runtime, "federation.refresh.ixfr");
  if (converge.axfr != mirror_count)
    die("converge", "expected exactly " + std::to_string(mirror_count) +
                        " full transfers (initial sync), saw " + std::to_string(converge.axfr));
  if (converge.ixfr == 0) die("converge", "edge converged without a single IXFR");
  rows.push_back(converge);

  // Phase 5: partition. The building primary dies; past the expiry
  // horizon the edge must keep answering for its mirrors — stale data
  // beats no data.
  building_rt->stop();
  building_rt.reset();
  for (int i = 0; i < 200 && !edge_runtime.serving_stale(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  if (!edge_runtime.serving_stale()) die("partition", "edge never flagged staleness");

  transport::QueryOptions stale_query;
  stale_query.timeout = std::chrono::milliseconds(250);
  obs::Histogram latency;
  std::uint64_t answered = 0;
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < partition_ops; ++i) {
    const auto& apex = mirrored[i % mirrored.size()];
    auto query = dns::make_query(static_cast<std::uint16_t>(i & 0xffff),
                                 dns::name_of("door." + apex.to_string()), dns::RRType::TXT,
                                 false);
    auto s = Clock::now();
    auto reply = transport::udp_query(edge_runtime.local(), query, stale_query);
    latency.record(
        static_cast<std::uint64_t>(std::chrono::nanoseconds(Clock::now() - s).count()));
    if (reply.ok() && !reply.value().answers.empty()) ++answered;
  }
  Row partition{"partition_stale", partition_ops, elapsed_s(t0), 0,
                latency.p50(), latency.p90(), latency.p99()};
  partition.qps = static_cast<double>(partition_ops) / partition.seconds;
  partition.answered = answered;
  partition.stale_ratio =
      static_cast<double>(answered) / static_cast<double>(partition_ops);
  partition.stale_serves = counter_of(edge_runtime, "federation.stale_serves");
  if (partition.stale_ratio < 0.99)
    die("partition", "edge answered only " + std::to_string(answered) + "/" +
                         std::to_string(partition_ops) + " during the outage");
  if (partition.stale_serves == 0) die("partition", "stale serves were not counted");
  rows.push_back(partition);

  edge.stop();
  edge_runtime.stop();
  street_rt->stop();
  city_rt->stop();
  root_rt->stop();

  print_rows(rows);
  write_json(out_path, shape, rows);
  return 0;
}
