// E10 — ablations on the design choices DESIGN.md calls out:
//   * resolver cache on/off for an AR-style repeated-gaze workload;
//   * split-horizon view matching cost as the number of views grows;
//   * presence-rule checking overhead;
//   * Hilbert order ablation on a fixed room workload (precision vs
//     interval count vs query time).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/deployment.hpp"
#include "geo/hilbert_index.hpp"
#include "util/rng.hpp"

using namespace sns;

namespace {

double to_ms(net::Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

void print_cache_ablation() {
  std::printf("E10a / resolver cache ablation — AR headset re-resolving 5 devices, 200 gazes\n");
  std::printf("%-12s %14s %14s %12s\n", "cache", "total ms", "mean ms/gaze", "hit rate");
  for (bool use_cache : {false, true}) {
    auto world = core::make_white_house_world(4);
    auto& d = *world.deployment;
    net::NodeId headset = d.add_client("headset", *world.oval_office, true);
    auto stub = d.make_stub(headset, *world.oval_office);
    resolver::DnsCache cache;
    if (use_cache) stub.set_cache(&cache);

    std::vector<dns::Name> gaze_targets{world.mic, world.speaker, world.display};
    util::Rng rng(1);
    net::Duration total{0};
    for (int gaze = 0; gaze < 200; ++gaze) {
      const dns::Name& target = gaze_targets[rng.next_below(gaze_targets.size())];
      auto result = stub.resolve(target, dns::RRType::ANY);
      if (result.ok()) total += result.value().stats.latency;
    }
    double hit_rate = use_cache && (cache.hits() + cache.misses()) > 0
                          ? static_cast<double>(cache.hits()) /
                                static_cast<double>(cache.hits() + cache.misses())
                          : 0.0;
    std::printf("%-12s %14.1f %14.3f %11.0f%%\n", use_cache ? "on" : "off", to_ms(total),
                to_ms(total) / 200.0, hit_rate * 100);
  }
  std::printf("\n");
}

void print_hilbert_order_ablation() {
  std::printf("E10b / Hilbert order ablation — 4096 devices, 0.2deg queries\n");
  std::printf("%6s %14s %16s %14s\n", "order", "mean us/query", "mean intervals",
              "mean hits");
  for (int order : {2, 4, 6, 8, 10, 12, 14}) {
    geo::HilbertIndex index(geo::BoundingBox{0, 0, 10, 10}, order);
    util::Rng rng(2);
    for (geo::EntryId id = 0; id < 4096; ++id)
      index.insert(id, {rng.next_double(0, 10), rng.next_double(0, 10), 0});
    util::Rng query_rng(3);
    double intervals = 0;
    std::size_t hits = 0;
    constexpr int kReps = 2000;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      double lat = query_rng.next_double(0, 9.8), lon = query_rng.next_double(0, 9.8);
      geo::BoundingBox query{lat, lon, lat + 0.2, lon + 0.2};
      hits += index.query(query).size();
      intervals += static_cast<double>(index.grid().decompose(query).size());
    }
    auto elapsed = std::chrono::steady_clock::now() - start;
    std::printf("%6d %14.2f %16.1f %14.1f\n", order,
                std::chrono::duration<double, std::micro>(elapsed).count() / kReps,
                intervals / kReps, static_cast<double>(hits) / kReps);
  }
  std::printf("\n");
}

// View matching: cost of the split-horizon decision as views grow.
void bench_view_match(benchmark::State& state) {
  auto views = static_cast<std::uint32_t>(state.range(0));
  server::AuthoritativeServer server("many-views");
  dns::Name apex = dns::name_of("zone.loc");
  for (std::uint32_t v = 0; v < views; ++v) {
    std::size_t index = server.add_view("room-" + std::to_string(v), server::match_room(v));
    auto zone = std::make_shared<server::Zone>(apex, dns::name_of("ns.zone.loc"));
    (void)zone->add(dns::make_txt(dns::name_of("dev.zone.loc"), {"v" + std::to_string(v)}));
    server.add_zone(index, zone);
  }
  server::ClientContext ctx;
  ctx.room = views - 1;  // worst case: matches the last view
  dns::Message query = dns::make_query(1, dns::name_of("dev.zone.loc"), dns::RRType::TXT);
  for (auto _ : state) {
    auto response = server.handle(query, ctx);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(bench_view_match)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Presence rules: overhead of checking k rules per query.
void bench_presence_rules(benchmark::State& state) {
  auto rules = static_cast<std::uint32_t>(state.range(0));
  server::AuthoritativeServer server("presence");
  dns::Name apex = dns::name_of("zone.loc");
  auto zone = std::make_shared<server::Zone>(apex, dns::name_of("ns.zone.loc"));
  (void)zone->add(dns::make_txt(dns::name_of("dev.zone.loc"), {"x"}));
  server.add_zone(zone);
  auto token = std::make_shared<const std::string>("tok");
  for (std::uint32_t r = 0; r < rules; ++r) {
    auto owner = apex.prepend("protected-" + std::to_string(r));
    server.add_presence_rule(server::PresenceRule{owner.value(), r, token});
  }
  server::ClientContext ctx;
  ctx.internal = true;
  dns::Message query = dns::make_query(1, dns::name_of("dev.zone.loc"), dns::RRType::TXT);
  for (auto _ : state) {
    auto response = server.handle(query, ctx);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(bench_presence_rules)->Arg(0)->Arg(8)->Arg(64)->Arg(512);

// Zone store scaling: lookup cost as the zone grows (many devices per
// spatial domain).
void bench_zone_lookup(benchmark::State& state) {
  auto devices = static_cast<std::uint64_t>(state.range(0));
  server::Zone zone(dns::name_of("building.loc"), dns::name_of("ns.building.loc"));
  for (std::uint64_t i = 0; i < devices; ++i) {
    auto owner = dns::name_of("dev-" + std::to_string(i) + ".building.loc");
    (void)zone.add(dns::make_a(owner, net::Ipv4Addr::from_u32(0x0a000000u +
                                                              static_cast<std::uint32_t>(i))));
  }
  dns::Name target = dns::name_of("dev-" + std::to_string(devices / 2) + ".building.loc");
  for (auto _ : state) {
    auto result = zone.lookup(target, dns::RRType::A);
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(bench_zone_lookup)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  print_cache_ablation();
  print_hilbert_order_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
