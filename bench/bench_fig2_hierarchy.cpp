// E2 — Figure 2: "A Spatial Name Hierarchy".
//
// Rebuilds the figure's delegation tree from live zone data (root ->
// .loc -> .usa/.uk -> ... -> rooms), prints it, and benchmarks the
// delegation walk at each depth.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>

#include "core/deployment.hpp"

using namespace sns;

namespace {

core::WhiteHouseWorld& world() {
  static core::WhiteHouseWorld w = core::make_white_house_world(2);
  return w;
}

void print_tree() {
  std::printf("E2 / Figure 2 — spatial name hierarchy (from live delegations)\n");
  std::printf(".\n");
  std::printf("`- .loc   (alongside .org .net ... for DNS interoperability)\n");
  std::function<void(const core::ZoneSite*, int)> walk = [&](const core::ZoneSite* site,
                                                             int depth) {
    std::string indent(static_cast<std::size_t>(depth) * 3, ' ');
    std::printf("%s`- .%s   (%zu devices, ns=%s)\n", indent.c_str(),
                site->zone->civic().components().back().c_str(), site->zone->device_count(),
                site->ns_name.to_string().c_str());
    for (const core::ZoneSite* child : site->children) walk(child, depth + 1);
  };
  for (const auto& site : world().deployment->sites())
    if (site.parent == nullptr) walk(&site, 1);
  std::printf("\n");

  // The figure's example fully-qualified device names:
  std::printf("example spatial names resolved from this hierarchy:\n");
  for (const dns::Name& name : {world().mic, world().speaker, world().display, world().camera})
    std::printf("  %s\n", name.to_string().c_str());
  std::printf("\n");
}

// How long one authoritative delegation walk takes per depth, on the
// in-memory zone store (no network): the cost of the hierarchy itself.
void bench_delegation_lookup(benchmark::State& state) {
  auto depth = static_cast<std::size_t>(state.range(0));
  const core::ZoneSite* site = world().oval_office;
  std::vector<const core::ZoneSite*> chain;
  for (const core::ZoneSite* z = site; z != nullptr; z = z->parent) chain.push_back(z);
  // chain = [oval, 1600, penn, washington, dc, usa]; pick by depth.
  depth = std::min(depth, chain.size() - 1);
  const core::ZoneSite* start = chain[chain.size() - 1 - depth];
  state.SetLabel(start->zone->domain().to_string());
  dns::Name qname = world().mic;
  for (auto _ : state) {
    auto result = start->zone->local_zone()->lookup(qname, dns::RRType::BDADDR);
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(bench_delegation_lookup)->DenseRange(0, 5);

void bench_civic_to_domain(benchmark::State& state) {
  auto civic = core::CivicName::parse_postal(
                   "Oval Office, 1600 Pennsylvania Ave NW, Washington, DC, USA")
                   .value();
  for (auto _ : state) {
    auto domain = civic.to_domain();
    benchmark::DoNotOptimize(&domain);
  }
}
BENCHMARK(bench_civic_to_domain);

}  // namespace

int main(int argc, char** argv) {
  print_tree();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
