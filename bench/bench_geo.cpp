// bench_geo — the synthetic city: reverse geodetic queries at scale.
//
// §3.2's complexity claim ("naive … O(n) for n devices … space-filling
// curves … logarithmic complexity … alternatives such as R-trees")
// measured where it matters: a city of thousands of buildings and a
// million devices, raced in memory AND end to end over the real UDP
// socket stack while RFC 2136 churn re-homes devices concurrently.
//
// Stages:
//
//   mem_*   in-memory index race at kCityDevices entries: naive linear
//           scan vs the packed Hilbert-interval index (bulk-loaded) vs
//           the STR bulk-loaded R-tree, across five area sizes from a
//           room to a district. The headline shape: Hilbert and R-tree
//           stay ~flat in n and ~linear in hits; naive pays O(n) per
//           query no matter how small the box.
//   e5_*    the old bench_geodetic_index sweep, folded in: all four
//           SpatialIndex implementations plus the flat layout swept
//           over n = 16..65536 at a building-sized box (E5's crossover
//           story: naive wins small, loses big).
//   e2e_*   a live ServerRuntime serving the same city as a zone;
//           reader threads issue AREA queries over UDP (EDNS 1232,
//           truncation → TCP retry handled by the client) while a
//           churn thread re-homes devices through RFC 2136 delete+add
//           pairs, each publishing a snapshot with an incrementally
//           rebuilt SpatialView.
//
// Usage: bench_geo [out.json] [scale]   (scale 0 = CI smoke)
//
// Every mode — smoke included — asserts the paper's claim directly:
// the Hilbert-interval index must beat the naive scan by ≥5x at one
// million entries on the smallest box, else exit 1.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dns/record.hpp"
#include "geo/flat_hilbert_index.hpp"
#include "geo/hilbert_index.hpp"
#include "geo/naive_index.hpp"
#include "geo/quadtree.hpp"
#include "geo/rtree.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"
#include "server/update.hpp"
#include "server/zone.hpp"
#include "spatial/area.hpp"
#include "transport/client.hpp"
#include "util/rng.hpp"

using namespace sns;
using Clock = std::chrono::steady_clock;

namespace {

// A 0.2° x 0.2° city (~22 km square) centred on the usual test town.
const geo::BoundingBox kCity{38.80, -77.15, 39.00, -76.95};
constexpr std::size_t kCityDevices = 1'000'000;
constexpr std::size_t kCityBuildings = 4'000;
constexpr int kGridOrder = 12;  // cell ~ 0.2/2^12 deg ~ 5.4 m

// Query boxes from a room to a district (side in degrees; 0.001° lat
// ~ 111 m).
struct AreaSize {
  const char* name;
  double side;
};
constexpr AreaSize kAreaSizes[] = {
    {"room", 0.0004}, {"floor", 0.002}, {"building", 0.01}, {"block", 0.04}, {"district", 0.12}};

struct Row {
  std::string name;
  std::uint64_t entries = 0;
  double area_deg = 0.0;  // query box side; 0 = n/a
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double avg_hits = 0.0;
  double speedup_vs_naive = 0.0;  // same box size, same n; 0 = n/a
};

[[noreturn]] void die(const char* what, const std::string& why) {
  std::fprintf(stderr, "bench_geo: %s: %s\n", what, why.c_str());
  std::exit(1);
}

/// Deterministic synthetic city: buildings uniform across the domain,
/// devices gaussian around their building (σ ~ 22 m).
std::vector<std::pair<geo::EntryId, geo::GeoPoint>> make_city(std::size_t devices,
                                                              std::size_t buildings,
                                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<geo::GeoPoint> centers;
  centers.reserve(buildings);
  for (std::size_t b = 0; b < buildings; ++b)
    centers.push_back({rng.next_double(kCity.min_lat + 0.01, kCity.max_lat - 0.01),
                       rng.next_double(kCity.min_lon + 0.01, kCity.max_lon - 0.01), 0});
  std::vector<std::pair<geo::EntryId, geo::GeoPoint>> points;
  points.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    const auto& c = centers[i % buildings];
    points.push_back(
        {static_cast<geo::EntryId>(i),
         {std::clamp(c.latitude + rng.next_gaussian(0, 0.0002), kCity.min_lat, kCity.max_lat),
          std::clamp(c.longitude + rng.next_gaussian(0, 0.0002), kCity.min_lon, kCity.max_lon),
          0}});
  }
  return points;
}

/// A query box of side `side` centred near some building so hit counts
/// are representative (an empty box flatters every index equally).
geo::BoundingBox sample_box(util::Rng& rng, double side) {
  double lat = rng.next_double(kCity.min_lat + 0.01, kCity.max_lat - 0.01 - side);
  double lon = rng.next_double(kCity.min_lon + 0.01, kCity.max_lon - 0.01 - side);
  return geo::BoundingBox{lat, lon, lat + side, lon + side};
}

Row time_index_queries(const geo::SpatialIndex& index, const std::string& row_name,
                       double side, std::uint64_t ops) {
  util::Rng rng(2024);
  obs::Histogram latency;
  std::uint64_t hits = 0;
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    auto box = sample_box(rng, side);
    auto s = Clock::now();
    auto found = index.query(box);
    latency.record(
        static_cast<std::uint64_t>(std::chrono::nanoseconds(Clock::now() - s).count()));
    hits += found.size();
  }
  Row row;
  row.name = row_name;
  row.entries = index.size();
  row.area_deg = side;
  row.ops = ops;
  row.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  row.qps = static_cast<double>(ops) / row.seconds;
  row.p50_ns = latency.p50();
  row.p90_ns = latency.p90();
  row.p99_ns = latency.p99();
  row.avg_hits = static_cast<double>(hits) / static_cast<double>(ops);
  return row;
}

/// The at-scale race: one city, three contenders, five box sizes.
/// Returns the smallest-box hilbert-vs-naive speedup for the gate.
double bench_city_race(std::vector<Row>& rows, bool smoke) {
  std::printf("building synthetic city: %zu devices / %zu buildings...\n", kCityDevices,
              kCityBuildings);
  auto points = make_city(kCityDevices, kCityBuildings, 7);

  geo::NaiveIndex naive;
  for (const auto& [id, p] : points) naive.insert(id, p);
  geo::FlatHilbertIndex hilbert(kCity, kGridOrder);
  hilbert.bulk_load(points);
  geo::RTree rtree;
  rtree.bulk_load(points);
  std::printf("built: naive=%zu hilbert=%zu rtree(h=%d)=%zu\n", naive.size(), hilbert.size(),
              rtree.height(), rtree.size());

  double gate_speedup = 0.0;
  for (const auto& area : kAreaSizes) {
    // The naive scan costs O(n) per op at n=1M; keep its rep count low.
    std::uint64_t fast_ops = smoke ? 300 : 3'000;
    std::uint64_t naive_ops = smoke ? 20 : 100;
    auto naive_row =
        time_index_queries(naive, std::string("mem_naive_") + area.name, area.side, naive_ops);
    auto hilbert_row = time_index_queries(
        hilbert, std::string("mem_hilbert_") + area.name, area.side, fast_ops);
    auto rtree_row =
        time_index_queries(rtree, std::string("mem_rtree_") + area.name, area.side, fast_ops);
    hilbert_row.speedup_vs_naive = naive_row.p50_ns / hilbert_row.p50_ns;
    rtree_row.speedup_vs_naive = naive_row.p50_ns / rtree_row.p50_ns;
    if (area.side == kAreaSizes[0].side) gate_speedup = hilbert_row.speedup_vs_naive;
    rows.push_back(naive_row);
    rows.push_back(hilbert_row);
    rows.push_back(rtree_row);
  }
  return gate_speedup;
}

/// E5 folded in from the retired bench_geodetic_index: the small-n
/// sweep where the crossover lives, all implementations, one
/// building-sized box.
void bench_e5_sweep(std::vector<Row>& rows, bool smoke) {
  constexpr double kSide = 0.01;
  for (std::size_t n : {std::size_t{16}, std::size_t{256}, std::size_t{4'096},
                        std::size_t{65'536}}) {
    auto points = make_city(n, std::max<std::size_t>(1, n / 16), 11);
    std::vector<std::unique_ptr<geo::SpatialIndex>> contenders;
    contenders.push_back(std::make_unique<geo::NaiveIndex>());
    contenders.push_back(std::make_unique<geo::HilbertIndex>(kCity, 10));
    contenders.push_back(std::make_unique<geo::FlatHilbertIndex>(kCity, 10));
    contenders.push_back(std::make_unique<geo::RTree>());
    contenders.push_back(std::make_unique<geo::Quadtree>(kCity));
    std::uint64_t ops = smoke ? 50 : (n > 16'384 ? 500 : 2'000);
    Row naive_row;
    for (auto& index : contenders) {
      for (const auto& [id, p] : points) index->insert(id, p);
      auto row = time_index_queries(
          *index, "e5_" + std::string(index->name()) + "_n" + std::to_string(n), kSide, ops);
      if (std::strcmp(index->name(), "naive") == 0)
        naive_row = row;
      else
        row.speedup_vs_naive = naive_row.p50_ns / row.p50_ns;
      rows.push_back(row);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the city as a served zone, AREA queries over real sockets
// under concurrent RFC 2136 re-homing churn.

server::ZoneViewPtr make_city_zone(const std::vector<std::pair<geo::EntryId, geo::GeoPoint>>&
                                       points) {
  const auto apex = dns::name_of("city.loc");
  std::vector<dns::ResourceRecord> records;
  records.reserve(points.size() + 2);
  records.push_back(dns::make_soa(apex, dns::name_of("ns.city.loc"), 1));
  records.push_back(dns::make_ns(apex, dns::name_of("ns.city.loc")));
  for (const auto& [id, p] : points) {
    auto loc = dns::LocData::from_degrees(p.latitude, p.longitude);
    if (!loc.ok()) die("loc encode", loc.error().message);
    records.push_back(dns::make_loc(dns::name_of("d" + std::to_string(id) + ".city.loc"),
                                    loc.value()));
  }
  auto view = server::build_zone_view(apex, std::move(records));
  if (!view.ok()) die("zone build", view.error().message);
  return std::move(view).value();
}

void bench_e2e(std::vector<Row>& rows, bool smoke) {
  const std::size_t devices = smoke ? 20'000 : kCityDevices;
  const std::size_t buildings = smoke ? 200 : kCityBuildings;
  std::printf("building e2e city zone: %zu devices...\n", devices);
  auto points = make_city(devices, buildings, 7);
  auto zone = make_city_zone(points);

  runtime::RuntimeOptions options;
  options.threads = 2;
  options.drain_grace = std::chrono::milliseconds(500);
  runtime::ServerRuntime runtime("bench-geo", options);
  if (auto started = runtime.start(transport::loopback(0), {zone}); !started.ok())
    die("runtime start", started.error().message);
  auto server = runtime.local();
  std::printf("serving city.loc (%zu records) on %s\n", zone->record_count(),
              server.to_string().c_str());

  // Churn thread: re-home random devices (delete + add, two UPDATEs)
  // over one reused TCP connection for the whole measurement window.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> updates{0}, update_failures{0};
  std::thread churn([&] {
    util::Rng rng(31);
    transport::TcpClient tcp;
    if (!tcp.connect(server, std::chrono::milliseconds(2000)).ok()) {
      update_failures.fetch_add(1);
      return;
    }
    const auto apex = dns::name_of("city.loc");
    std::uint16_t id = 1;
    while (!stop.load(std::memory_order_acquire)) {
      auto device = static_cast<std::size_t>(rng.next_double(0, 1) *
                                             static_cast<double>(devices));
      auto owner = dns::name_of("d" + std::to_string(device % devices) + ".city.loc");
      auto fresh = dns::LocData::from_degrees(
          rng.next_double(kCity.min_lat, kCity.max_lat),
          rng.next_double(kCity.min_lon, kCity.max_lon));
      if (!fresh.ok()) continue;
      auto del = tcp.query(
          server::make_update_delete_rrset(++id, apex, owner, dns::RRType::LOC),
          std::chrono::milliseconds(2000));
      auto add = tcp.query(
          server::make_update_add(++id, apex, dns::make_loc(owner, fresh.value())),
          std::chrono::milliseconds(2000));
      if (!del.ok() || !add.ok() || add.value().header.rcode != dns::Rcode::NoError)
        update_failures.fetch_add(1);
      else
        updates.fetch_add(1);
    }
  });

  // Reader: AREA queries per box size over UDP; big answers truncate
  // and retry over TCP inside query_auto, which is the deployed path.
  util::Rng rng(17);
  transport::QueryOptions qopts;
  qopts.edns_udp_size = 1232;
  std::uint16_t qid = 100;
  auto churn_t0 = Clock::now();
  for (const auto& area : kAreaSizes) {
    std::uint64_t ops = smoke ? 40 : 400;
    obs::Histogram latency;
    std::uint64_t hits = 0, failures = 0;
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto query =
          spatial::make_area_query(++qid, dns::name_of("city.loc"), sample_box(rng, area.side));
      auto s = Clock::now();
      auto out = transport::query_auto(server, query, qopts);
      latency.record(
          static_cast<std::uint64_t>(std::chrono::nanoseconds(Clock::now() - s).count()));
      if (!out.ok() || out.value().response.header.rcode != dns::Rcode::NoError)
        ++failures;
      else
        hits += out.value().response.answers.size();
    }
    if (failures != 0) die("e2e queries failed", std::to_string(failures) + " of " +
                                                     std::to_string(ops));
    Row row;
    row.name = std::string("e2e_") + area.name;
    row.entries = devices;
    row.area_deg = area.side;
    row.ops = ops;
    row.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    row.qps = static_cast<double>(ops) / row.seconds;
    row.p50_ns = latency.p50();
    row.p90_ns = latency.p90();
    row.p99_ns = latency.p99();
    row.avg_hits = static_cast<double>(hits) / static_cast<double>(ops);
    rows.push_back(row);
  }

  stop.store(true, std::memory_order_release);
  churn.join();
  double churn_seconds = std::chrono::duration<double>(Clock::now() - churn_t0).count();
  if (updates.load() == 0 || update_failures.load() != 0)
    die("e2e churn", std::to_string(updates.load()) + " updates, " +
                         std::to_string(update_failures.load()) + " failures");
  Row churn_row;
  churn_row.name = "e2e_churn_rehomings";
  churn_row.entries = devices;
  churn_row.ops = updates.load();
  churn_row.seconds = churn_seconds;
  churn_row.qps = static_cast<double>(updates.load()) / churn_seconds;
  rows.push_back(churn_row);

  obs::MetricsRegistry totals;
  runtime.merge_metrics(totals);
  std::printf("e2e: %llu re-homings, %llu incremental / %llu full spatial rebuilds\n",
              static_cast<unsigned long long>(updates.load()),
              static_cast<unsigned long long>(
                  totals.counter_value("runtime.spatial.rebuild_incremental").value_or(0)),
              static_cast<unsigned long long>(
                  totals.counter_value("runtime.spatial.rebuild_full").value_or(0)));
  runtime.drain_and_stop();
}

std::string today() {
  std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[16];
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
  return buf;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  obs::JsonWriter json;
  json.begin_object();
  json.field("bench", "geo");
  json.field("date", today());
  json.begin_object("config");
  json.field("city_devices", static_cast<std::uint64_t>(kCityDevices));
  json.field("city_buildings", static_cast<std::uint64_t>(kCityBuildings));
  json.field("grid_order", std::int64_t{kGridOrder});
  json.field("hardware_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.field("build", SNS_BUILD_TYPE);
  json.end_object();
  json.begin_array("results");
  for (const auto& row : rows) {
    json.begin_object();
    json.field("name", row.name);
    json.field("entries", static_cast<std::uint64_t>(row.entries));
    if (row.area_deg != 0.0) json.field("area_deg", row.area_deg);
    json.field("ops", static_cast<std::uint64_t>(row.ops));
    json.field("seconds", row.seconds);
    json.field("qps", row.qps);
    if (row.p50_ns != 0.0) {
      json.field("p50_ns", row.p50_ns);
      json.field("p90_ns", row.p90_ns);
      json.field("p99_ns", row.p99_ns);
    }
    json.field("avg_hits", row.avg_hits);
    if (row.speedup_vs_naive != 0.0) json.field("speedup_vs_naive", row.speedup_vs_naive);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) die("cannot write", path);
  std::fputs(json.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%-24s %10s %10s %8s %12s %12s %12s %10s %9s\n", "stage", "entries", "area",
              "ops", "qps", "p50 ns", "p99 ns", "avg hits", "vs naive");
  for (const auto& row : rows)
    std::printf("%-24s %10llu %10.4f %8llu %12.1f %12.0f %12.0f %10.1f %9.1f\n",
                row.name.c_str(), static_cast<unsigned long long>(row.entries), row.area_deg,
                static_cast<unsigned long long>(row.ops), row.qps, row.p50_ns, row.p99_ns,
                row.avg_hits, row.speedup_vs_naive);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = argc > 1 ? argv[1] : "BENCH_geo.json";
  std::uint64_t scale = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  bool smoke = scale == 0;

  std::vector<Row> rows;
  double gate_speedup = bench_city_race(rows, smoke);
  bench_e5_sweep(rows, smoke);
  bench_e2e(rows, smoke);
  print_rows(rows);
  write_json(out_path, rows);

  // The paper's claim, enforced: at one million devices the interval
  // index must beat the naive scan by a wide margin on a room-sized
  // box. 5x is a deliberately loose floor — the measured gap is orders
  // of magnitude — so only a real regression trips it.
  constexpr double kMinSpeedup = 5.0;
  std::printf("gate: hilbert vs naive at %zu entries (room box): %.1fx (floor %.0fx)\n",
              kCityDevices, gate_speedup, kMinSpeedup);
  if (gate_speedup < kMinSpeedup) {
    std::fprintf(stderr, "bench_geo: FAIL — hilbert speedup %.2fx below %.0fx floor\n",
                 gate_speedup, kMinSpeedup);
    return 1;
  }
  return 0;
}
