// E3 — Figure 3: "Context-dependent Spatial Resolution".
//
// Replays exactly the three queries of the figure over the simulated
// topology and prints query, context, answer and virtual latency:
//   1. mic (Oval Office) -> speaker : BDADDR        [local]
//   2. camera (Cabinet Room) -> display : AAAA      [global, full FQDN]
//   3. in-room client -> display : A (private)      [local]
// plus the refusal of the presence-protected mic from outside.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/deployment.hpp"

using namespace sns;

namespace {

struct Fig3 {
  core::WhiteHouseWorld world = core::make_white_house_world(3);
  net::NodeId mic_node = world.oval_office->zone->find_device(world.mic)->node;
  net::NodeId camera_node = world.cabinet_room->zone->find_device(world.camera)->node;
};

Fig3& fig3() {
  static Fig3 f;
  return f;
}

void print_figure() {
  Fig3& f = fig3();
  auto& d = *f.world.deployment;
  std::printf("E3 / Figure 3 — context-dependent spatial resolution\n");
  std::printf("%-44s %-28s %-10s %s\n", "query (from -> name)", "answer", "type",
              "latency");

  auto show = [&](const char* from, resolver::StubResolver& stub, const dns::Name& qname,
                  dns::RRType type) {
    auto result = stub.resolve(qname, type);
    std::string answer = "-";
    std::string type_text = "-";
    long long latency_us = -1;
    if (result.ok()) {
      latency_us = result.value().stats.latency.count();
      if (!result.value().records.empty()) {
        answer = dns::rdata_to_string(result.value().records.front().rdata);
        type_text = dns::to_string(result.value().records.front().type);
      } else {
        answer = dns::to_string(result.value().stats.rcode);
      }
    }
    std::string query_text = std::string(from) + " -> " + qname.labels().front();
    std::printf("%-44s %-28s %-10s %lld us\n", query_text.c_str(), answer.c_str(),
                type_text.c_str(), latency_us);
  };

  // 1. Local resolution inside the Oval Office: BDADDR.
  auto mic_stub = d.make_stub(f.mic_node, *f.world.oval_office);
  show("mic@oval-office (local)", mic_stub, f.world.speaker, dns::RRType::BDADDR);

  // 2. Remote resolution from the Cabinet Room: global AAAA.
  auto camera_stub = d.make_stub(f.camera_node, *f.world.oval_office);
  show("camera@cabinet-room (remote)", camera_stub, f.world.display, dns::RRType::AAAA);

  // 3. In-room query for the display: private A record.
  show("mic@oval-office (local)", mic_stub, f.world.display, dns::RRType::A);

  // 4. The protected mic from outside: refused.
  show("camera@cabinet-room (remote)", camera_stub, f.world.mic, dns::RRType::ANY);
  std::printf("\n");

  // Machine-readable export: the four figure queries above left one
  // stub.resolve span tree each (server.handle nested inside the
  // net.exchange of every hop) plus the deployment metric snapshot.
  std::printf("E3 span trees: %s\n", d.tracer().to_json().c_str());
  std::printf("E3 metrics: %s\n\n", d.metrics().to_json().c_str());
  d.tracer().clear();  // keep the benchmark loops below unbounded-growth-free
}

void bench_local_bdaddr(benchmark::State& state) {
  Fig3& f = fig3();
  auto stub = f.world.deployment->make_stub(f.mic_node, *f.world.oval_office);
  for (auto _ : state) {
    auto result = stub.resolve(f.world.speaker, dns::RRType::BDADDR);
    if (!result.ok()) state.SkipWithError("local resolution failed");
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(bench_local_bdaddr);

void bench_remote_aaaa(benchmark::State& state) {
  Fig3& f = fig3();
  auto stub = f.world.deployment->make_stub(f.camera_node, *f.world.oval_office);
  for (auto _ : state) {
    auto result = stub.resolve(f.world.display, dns::RRType::AAAA);
    if (!result.ok()) state.SkipWithError("remote resolution failed");
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(bench_remote_aaaa);

// The split-horizon decision itself (view match + presence check) on
// the server, without network.
void bench_server_handle(benchmark::State& state) {
  Fig3& f = fig3();
  bool internal = state.range(0) == 1;
  state.SetLabel(internal ? "internal-view" : "external-view");
  server::ClientContext ctx;
  ctx.internal = internal;
  dns::Message query = dns::make_query(1, f.world.display, dns::RRType::ANY);
  for (auto _ : state) {
    auto response = f.world.oval_office->server->handle(query, ctx);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(bench_server_handle)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
