// E4 — Figure 4: "Hilbert Curves of Order n".
//
// Renders the figure's four curves in ASCII, then sweeps the order to
// show the precision/cost trade-off §3.2 describes ("Hilbert curves
// with varying order can be used to provide varying precision").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "geo/hilbert.hpp"

using namespace sns;

namespace {

void print_figure() {
  std::printf("E4 / Figure 4 — Hilbert curves of order n\n\n");
  for (int order = 1; order <= 4; ++order) {
    std::printf("n = %d\n%s\n", order, geo::render_hilbert_ascii(order).c_str());
  }

  // Order sweep over the Oval Office domain (~11 m x ~13 m):
  geo::BoundingBox oval{38.89725, -77.03745, 38.89735, -77.03730};
  std::printf("order sweep over the Oval Office domain (%.0fm x %.0fm):\n", 11.0, 13.0);
  std::printf("%5s %12s %14s %16s %18s\n", "order", "cells", "cell size", "adjacency gap",
              "intervals(25%box)");
  for (int order = 1; order <= 16; ++order) {
    geo::HilbertGrid grid(oval, order);
    double cell_m = 11.0 / static_cast<double>(grid.cells_per_side());
    geo::BoundingBox query{38.897275, -77.037415, 38.8973, -77.037378};  // ~25% of the room
    auto intervals = grid.decompose(query);
    double gap = order <= 10 ? geo::hilbert_adjacency_gap(order) : -1;
    if (gap >= 0)
      std::printf("%5d %12llu %12.3fm %16.1f %18zu\n", order,
                  static_cast<unsigned long long>(grid.cells_per_side()) *
                      grid.cells_per_side(),
                  cell_m, gap, intervals.size());
    else
      std::printf("%5d %12llu %12.4fm %16s %18zu\n", order,
                  static_cast<unsigned long long>(grid.cells_per_side()) *
                      grid.cells_per_side(),
                  cell_m, "-", intervals.size());
  }
  std::printf("\n");
}

void bench_xy_to_d(benchmark::State& state) {
  int order = static_cast<int>(state.range(0));
  std::uint32_t side = 1u << order;
  std::uint32_t x = side / 3, y = side / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::hilbert_xy_to_d(order, x, y));
  }
}
BENCHMARK(bench_xy_to_d)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Arg(31);

void bench_d_to_xy(benchmark::State& state) {
  int order = static_cast<int>(state.range(0));
  geo::HilbertD d = (1ull << (2 * order)) / 3;
  for (auto _ : state) {
    std::uint32_t x = 0, y = 0;
    geo::hilbert_d_to_xy(order, d, x, y);
    benchmark::DoNotOptimize(x + y);
  }
}
BENCHMARK(bench_d_to_xy)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Arg(31);

void bench_decompose(benchmark::State& state) {
  int order = static_cast<int>(state.range(0));
  geo::HilbertGrid grid(geo::BoundingBox{0, 0, 1, 1}, order);
  geo::BoundingBox query{0.3, 0.3, 0.55, 0.55};
  for (auto _ : state) {
    auto intervals = grid.decompose(query);
    benchmark::DoNotOptimize(intervals.data());
  }
  geo::HilbertGrid probe(geo::BoundingBox{0, 0, 1, 1}, order);
  state.counters["intervals"] = static_cast<double>(probe.decompose(query).size());
}
BENCHMARK(bench_decompose)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
