// E8 — §3.1's NAT side-effect: "a global IP could be dynamically
// created for a particular port as a side-effect of the DNS resolution
// using, for example, the Port Control Protocol … maintained for the
// duration of the DNS response TTL."
//
// Measures mapping setup as part of resolution, verifies the
// TTL-lifetime contract over a sweep, and benchmarks NatBox operations.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "net/nat.hpp"
#include "net/sim.hpp"

using namespace sns;

namespace {

void print_table() {
  std::printf("E8 / NAT + PCP — mapping lifetime follows the DNS TTL\n");
  std::printf("%8s %16s %18s %18s\n", "ttl (s)", "mapped port", "alive at ttl-1s",
              "alive at ttl");

  for (std::uint32_t ttl : {30u, 120u, 300u, 3600u}) {
    net::SimClock clock;
    net::NatBox nat(net::Ipv4Addr{{203, 0, 113, 1}});
    // Resolution-triggered mapping: the edge server answers an external
    // AAAA/A query and installs the mapping for exactly the TTL.
    auto mapping = nat.request_mapping(/*node=*/1, /*port=*/443,
                                       std::chrono::seconds(ttl), clock.now());
    if (!mapping.ok()) continue;
    bool alive_before =
        nat.translate(mapping.value().external_port, std::chrono::seconds(ttl - 1))
            .has_value();
    bool alive_at =
        nat.translate(mapping.value().external_port, std::chrono::seconds(ttl)).has_value();
    std::printf("%8u %16u %18s %18s\n", ttl, mapping.value().external_port,
                alive_before ? "yes" : "NO(bug)", alive_at ? "YES(bug)" : "expired");
  }

  // Renewal keeps the advertised endpoint stable across TTL refreshes.
  net::NatBox nat(net::Ipv4Addr{{203, 0, 113, 1}});
  auto first = nat.request_mapping(1, 443, std::chrono::seconds(120), net::TimePoint{0});
  bool stable = true;
  for (int refresh = 1; refresh <= 10 && first.ok(); ++refresh) {
    auto renewed = nat.request_mapping(1, 443, std::chrono::seconds(120),
                                       std::chrono::seconds(100 * refresh));
    if (!renewed.ok() || renewed.value().external_port != first.value().external_port)
      stable = false;
  }
  std::printf("\nrenewal across 10 TTL refreshes keeps the external port: %s\n",
              stable ? "yes" : "NO");

  // Churn: how many stale mappings does a sweep reclaim?
  net::NatBox churn_nat(net::Ipv4Addr{{203, 0, 113, 2}});
  for (std::uint16_t i = 0; i < 500; ++i)
    (void)churn_nat.request_mapping(i, 80, std::chrono::seconds(60 + i % 120),
                                    net::TimePoint{0});
  std::size_t evicted = churn_nat.expire(std::chrono::seconds(120));
  std::printf("expiry sweep at t=120s over 500 mappings (ttl 60..180s): evicted %zu\n\n",
              evicted);
}

void bench_request_mapping(benchmark::State& state) {
  net::NatBox nat(net::Ipv4Addr{{203, 0, 113, 1}});
  net::NodeId node = 0;
  for (auto _ : state) {
    auto mapping = nat.request_mapping(node, 443, std::chrono::seconds(60), net::TimePoint{0});
    benchmark::DoNotOptimize(&mapping);
    nat.release_mapping(node, 443);
    ++node;
    if (node > 500) node = 0;
  }
}
BENCHMARK(bench_request_mapping);

void bench_translate(benchmark::State& state) {
  net::NatBox nat(net::Ipv4Addr{{203, 0, 113, 1}});
  auto mapping =
      nat.request_mapping(1, 443, std::chrono::seconds(3600), net::TimePoint{0});
  std::uint16_t port = mapping.ok() ? mapping.value().external_port : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nat.translate(port, std::chrono::seconds(1)));
  }
}
BENCHMARK(bench_translate);

void bench_renewal(benchmark::State& state) {
  net::NatBox nat(net::Ipv4Addr{{203, 0, 113, 1}});
  (void)nat.request_mapping(1, 443, std::chrono::seconds(60), net::TimePoint{0});
  for (auto _ : state) {
    auto renewed = nat.request_mapping(1, 443, std::chrono::seconds(60), net::TimePoint{0});
    benchmark::DoNotOptimize(&renewed);
  }
}
BENCHMARK(bench_renewal);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
