// E1 — Table 1: "Existing and extended DNS RRs".
//
// Regenerates the paper's table (protocol, RR type, sample entry) from
// the real codecs, adds the wire size and TXT-fallback form of each
// record, and benchmarks encode/decode throughput per type.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "dns/message.hpp"

using namespace sns;

namespace {

struct Row {
  const char* protocol;
  dns::RRType type;
  dns::Rdata rdata;
};

std::vector<Row> table1() {
  return {
      {"IPv4", dns::RRType::A, dns::AData{net::Ipv4Addr{{192, 0, 2, 1}}}},
      {"IPv6", dns::RRType::AAAA,
       dns::AaaaData{net::Ipv6Addr::parse("2001:db8::1").value()}},
      {"Bluetooth", dns::RRType::BDADDR,
       dns::BdaddrData{net::Bdaddr{{0x01, 0x23, 0x45, 0x67, 0x89, 0xab}}}},
      {"802.11", dns::RRType::WIFI, dns::WifiData{"ssid", net::Ipv4Addr{{192, 0, 3, 1}}}},
      {"LoRaWAN", dns::RRType::LORA,
       dns::LoraData{dns::name_of("gw.field.loc"), net::LoraDevAddr{0x01ab23cd}}},
      {"Audio", dns::RRType::DTMF, dns::DtmfData{net::DtmfTone{"421#"}}},
  };
}

std::size_t wire_size(const dns::Rdata& rdata) {
  util::ByteWriter w;
  dns::encode_rdata(rdata, w, nullptr);
  return w.size();
}

void print_table() {
  std::printf("E1 / Table 1 — existing and extended DNS RRs\n");
  std::printf("%-10s %-8s %-34s %7s  %s\n", "Protocol", "RR Type", "Sample Entry", "Wire B",
              "TXT fallback");
  for (const auto& row : table1()) {
    auto fallback = dns::to_txt_fallback(row.rdata);
    std::printf("%-10s %-8s %-34s %7zu  %s\n", row.protocol,
                dns::to_string(row.type).c_str(), dns::rdata_to_string(row.rdata).c_str(),
                wire_size(row.rdata),
                fallback.ok() ? fallback.value().strings[0].c_str() : "-");
  }
  std::printf("\n");
}

void bench_encode(benchmark::State& state) {
  auto rows = table1();
  const Row& row = rows[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(dns::to_string(row.type));
  for (auto _ : state) {
    util::ByteWriter w;
    dns::encode_rdata(row.rdata, w, nullptr);
    benchmark::DoNotOptimize(w.data().data());
  }
}
BENCHMARK(bench_encode)->DenseRange(0, 5);

void bench_decode(benchmark::State& state) {
  auto rows = table1();
  const Row& row = rows[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(dns::to_string(row.type));
  util::ByteWriter w;
  dns::encode_rdata(row.rdata, w, nullptr);
  for (auto _ : state) {
    util::ByteReader r{std::span(w.data())};
    auto decoded = dns::decode_rdata(row.type, r, w.size());
    benchmark::DoNotOptimize(&decoded);
  }
}
BENCHMARK(bench_decode)->DenseRange(0, 5);

void bench_full_message_roundtrip(benchmark::State& state) {
  // A realistic spatial answer: question + 4 answers with compression.
  dns::Message query =
      dns::make_query(1, dns::name_of("mic.oval-office.1600.penn-ave.washington.dc.usa.loc"),
                      dns::RRType::ANY);
  dns::Message msg = dns::make_response(query, dns::Rcode::NoError, true);
  dns::Name owner = query.questions[0].name;
  msg.answers.push_back(dns::make_bdaddr(owner, net::Bdaddr{{1, 2, 3, 4, 5, 6}}));
  msg.answers.push_back(dns::make_a(owner, net::Ipv4Addr{{192, 0, 3, 10}}));
  msg.answers.push_back(
      dns::make_loc(owner, dns::LocData::from_degrees(38.8974, -77.0374, 18).value()));
  msg.answers.push_back(dns::make_txt(owner, {"sns:zigbee=00:11:22:33:44:55:66:77"}));
  for (auto _ : state) {
    auto wire = msg.encode();
    auto decoded = dns::Message::decode(std::span(wire));
    benchmark::DoNotOptimize(&decoded);
  }
}
BENCHMARK(bench_full_message_roundtrip);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
