// bench_hotpath — the resolution hot path, measured in queries/sec.
//
// Every resolution in the paper's split-horizon (§3.1) and geodetic
// descent (§3.2) paths is a chain of Name-keyed lookups: zone probes on
// the authoritative side, cache probes on the resolver side, and name
// compression on every encoded message. This driver pins a number on
// each stage plus the assembled stub→recursive→authoritative stack, and
// writes BENCH_hotpath.json so later PRs have a trajectory to beat:
//
//   { "bench": "hotpath", "date": "...", "config": {...},
//     "results": [ {"name": ..., "ops": ..., "seconds": ...,
//                   "qps": ..., "p50_ns": ..., "p90_ns": ..., "p99_ns": ...} ] }
//
// Wall-clock time measures CPU cost of the machinery; network latency
// inside the end-to-end stage is simulated and does not consume wall
// time, so qps there is "how fast one core turns the resolution crank".
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "resolver/cache.hpp"
#include "server/zone.hpp"
#include "util/rng.hpp"

using namespace sns;
using Clock = std::chrono::steady_clock;

namespace {

struct Row {
  std::string name;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
};

double elapsed_s(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Times `op` per call into a histogram; returns the finished row.
template <typename Op>
Row timed(const std::string& name, std::uint64_t ops, Op&& op) {
  obs::Histogram latency;
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    auto s = Clock::now();
    op(i);
    latency.record(
        static_cast<std::uint64_t>(std::chrono::nanoseconds(Clock::now() - s).count()));
  }
  Row row{name, ops, elapsed_s(t0), 0, latency.p50(), latency.p90(), latency.p99()};
  row.qps = static_cast<double>(ops) / row.seconds;
  return row;
}

/// A deep civic hierarchy under one authoritative apex: `rooms` rooms
/// spread over floors/buildings/streets, `devices` leaf records each —
/// the shape §4.2's edge servers hold, scaled up.
struct DeepZone {
  server::Zone zone{dns::name_of("city.state.usa.loc"), dns::name_of("ns.city.state.usa.loc")};
  std::vector<dns::Name> owners;      // existing leaf names
  std::vector<dns::Name> missing;     // same shape, no records
  std::vector<dns::Name> mixed_case;  // existing names, mangled case
};

DeepZone make_deep_zone(int buildings, int floors, int rooms, int devices) {
  DeepZone dz;
  int host = 1;
  for (int b = 0; b < buildings; ++b) {
    for (int f = 0; f < floors; ++f) {
      for (int r = 0; r < rooms; ++r) {
        for (int d = 0; d < devices; ++d) {
          std::string leaf = "dev" + std::to_string(d) + ".room" + std::to_string(r) + ".floor" +
                             std::to_string(f) + ".bldg" + std::to_string(b) +
                             ".main-street.city.state.usa.loc";
          auto name = dns::name_of(leaf);
          auto addr = net::Ipv4Addr{{10, static_cast<std::uint8_t>(host >> 8),
                                     static_cast<std::uint8_t>(host & 0xff), 1}};
          ++host;
          (void)dz.zone.add(dns::make_a(name, addr));
          dz.owners.push_back(name);
          dz.missing.push_back(dns::name_of("ghost" + leaf));
          std::string upper = leaf;
          for (std::size_t i = 0; i < upper.size(); i += 2)
            upper[i] = static_cast<char>(std::toupper(static_cast<unsigned char>(upper[i])));
          dz.mixed_case.push_back(dns::name_of(upper));
        }
      }
    }
  }
  return dz;
}

/// Authoritative exact-match lookups on the deep zone: 60% exact hits,
/// 20% case-mangled hits, 20% NXDOMAIN (walks the wildcard path).
Row bench_zone_lookup(std::uint64_t ops) {
  auto dz = make_deep_zone(4, 4, 8, 8);  // 1024 leaves, 9-label owners
  util::Rng rng(42);
  std::uint64_t n = dz.owners.size();
  return timed("zone_lookup_uncached", ops, [&](std::uint64_t) {
    std::uint64_t pick = rng.next_below(n);
    std::uint64_t which = rng.next_below(10);
    const dns::Name& q = which < 6   ? dz.owners[pick]
                         : which < 8 ? dz.mixed_case[pick]
                                     : dz.missing[pick];
    auto result = dz.zone.lookup(q, dns::RRType::A);
    if (result.kind == server::Zone::Lookup::Kind::NotZone) std::abort();
  });
}

/// Name comparison in canonical order — the primitive under every map
/// probe (deep, case-mixed names).
Row bench_name_compare(std::uint64_t ops) {
  auto dz = make_deep_zone(2, 2, 4, 8);
  std::vector<dns::Name> names = dz.owners;
  names.insert(names.end(), dz.mixed_case.begin(), dz.mixed_case.end());
  util::Rng rng(7);
  std::uint64_t n = names.size();
  std::uint64_t sink = 0;
  Row row = timed("name_compare", ops, [&](std::uint64_t) {
    const dns::Name& a = names[rng.next_below(n)];
    const dns::Name& b = names[rng.next_below(n)];
    sink += (a == b) ? 1u : 0u;
    sink += (a <=> b) == std::strong_ordering::less ? 1u : 0u;
  });
  if (sink == 0xdeadbeef) std::printf("impossible\n");
  return row;
}

/// Resolver cache under a hot-key mix: 70% hits on a small hot set,
/// 15% cold misses, 15% negative probes.
Row bench_cache(std::uint64_t ops) {
  auto dz = make_deep_zone(4, 4, 8, 8);
  resolver::DnsCache cache(4096);
  net::TimePoint now{};
  for (const auto& owner : dz.owners) {
    dns::RRset set{dns::make_a(owner, net::Ipv4Addr{{10, 0, 0, 1}}, 3600)};
    cache.put(set, now);
  }
  for (std::size_t i = 0; i < 256; ++i)
    cache.put_negative(dz.missing[i], dns::RRType::A, dns::Rcode::NXDomain, 3600, now);
  util::Rng rng(11);
  std::uint64_t n = dz.owners.size();
  return timed("cache_mixed", ops, [&](std::uint64_t) {
    std::uint64_t which = rng.next_below(100);
    if (which < 70) {
      (void)cache.get(dz.owners[rng.next_below(64)], dns::RRType::A, now);
    } else if (which < 85) {
      (void)cache.get(dz.owners[64 + rng.next_below(n - 64)], dns::RRType::AAAA, now);
    } else {
      (void)cache.get_negative(dz.missing[rng.next_below(256)], dns::RRType::A, now);
    }
  });
}

/// Full message encode with compression: a referral-shaped response
/// (answer + authority + glue, heavy suffix sharing).
Row bench_message_encode(std::uint64_t ops) {
  dns::Message query = dns::make_query(
      1, dns::name_of("dev1.room2.floor3.bldg0.main-street.city.state.usa.loc"), dns::RRType::A);
  dns::Message response = dns::make_response(query, dns::Rcode::NoError, true);
  const auto& qname = query.questions.front().name;
  response.answers.push_back(dns::make_a(qname, net::Ipv4Addr{{10, 1, 2, 3}}));
  for (int i = 0; i < 4; ++i) {
    auto ns = dns::name_of("ns" + std::to_string(i) + ".city.state.usa.loc");
    response.authorities.push_back(dns::make_ns(dns::name_of("city.state.usa.loc"), ns));
    response.additionals.push_back(
        dns::make_a(ns, net::Ipv4Addr{{10, 9, 9, static_cast<std::uint8_t>(i + 1)}}));
  }
  std::size_t sink = 0;
  Row row = timed("message_encode", ops, [&](std::uint64_t) {
    auto wire = response.encode();
    sink += wire.size();
  });
  if (sink == 1) std::printf("impossible\n");
  return row;
}

/// The assembled stack: stub (with its own cache) → recursive resolver
/// → authoritative hierarchy, over the simulated White House world.
/// Zipf-ish mix: 70% hot names (cached after first touch), 15% unique
/// cold misses (full descent + NXDOMAIN), 15% repeat misses (negative
/// cache hits).
Row bench_end_to_end(std::uint64_t ops) {
  auto world = core::make_white_house_world(1234);
  auto& d = *world.deployment;
  net::NodeId rec = d.add_recursive_resolver("rec", world.white_house);
  net::NodeId client = d.add_client("bench-client", *world.oval_office, true);
  auto stub = d.make_plain_stub(client, rec);
  resolver::DnsCache stub_cache(4096);
  stub.set_cache(&stub_cache);

  std::vector<std::pair<dns::Name, dns::RRType>> hot = {
      {world.display, dns::RRType::A},     {world.display, dns::RRType::AAAA},
      {world.speaker, dns::RRType::A},     {world.speaker, dns::RRType::BDADDR},
      {world.camera, dns::RRType::AAAA},
  };
  std::vector<dns::Name> repeat_missing;
  for (int i = 0; i < 32; ++i)
    repeat_missing.push_back(dns::name_of(
        "nope" + std::to_string(i) + ".oval-office.1600.penn-ave.washington.dc.usa.loc"));

  util::Rng rng(99);
  std::uint64_t cold = 0;
  return timed("end_to_end_mix", ops, [&](std::uint64_t) {
    std::uint64_t which = rng.next_below(100);
    if (which < 70) {
      const auto& [name, type] = hot[rng.next_below(hot.size())];
      (void)stub.resolve(name, type);
    } else if (which < 85) {
      auto unique = dns::name_of("cold" + std::to_string(cold++) +
                                 ".1600.penn-ave.washington.dc.usa.loc");
      (void)stub.resolve(unique, dns::RRType::A);
    } else {
      (void)stub.resolve(repeat_missing[rng.next_below(repeat_missing.size())], dns::RRType::A);
    }
  });
}

std::string today() {
  std::time_t t = std::time(nullptr);
  char buf[16];
  std::tm tm{};
  gmtime_r(&t, &tm);
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
  return buf;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  obs::JsonWriter json;
  json.begin_object();
  json.field("bench", "hotpath");
  json.field("date", today());
  json.begin_object("config");
  json.field("zone_leaves", std::int64_t{1024});
  json.field("owner_depth_labels", std::int64_t{9});
  json.field("cache_capacity", std::int64_t{4096});
  json.field("build", SNS_BUILD_TYPE);
  json.end_object();
  json.begin_array("results");
  for (const auto& row : rows) {
    json.begin_object();
    json.field("name", row.name);
    json.field("ops", static_cast<std::uint64_t>(row.ops));
    json.field("seconds", row.seconds);
    json.field("qps", row.qps);
    json.field("p50_ns", row.p50_ns);
    json.field("p90_ns", row.p90_ns);
    json.field("p99_ns", row.p99_ns);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(json.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";

  std::vector<Row> rows;
  rows.push_back(bench_name_compare(2'000'000));
  rows.push_back(bench_zone_lookup(400'000));
  rows.push_back(bench_cache(2'000'000));
  rows.push_back(bench_message_encode(400'000));
  rows.push_back(bench_end_to_end(60'000));

  std::printf("%-24s %14s %10s %12s %10s %10s %10s\n", "stage", "ops", "seconds", "qps", "p50 ns",
              "p90 ns", "p99 ns");
  for (const auto& row : rows)
    std::printf("%-24s %14llu %10.3f %12.0f %10.0f %10.0f %10.0f\n", row.name.c_str(),
                static_cast<unsigned long long>(row.ops), row.seconds, row.qps, row.p50_ns,
                row.p90_ns, row.p99_ns);

  write_json(out_path, rows);
  return 0;
}
