file(REMOVE_RECURSE
  "CMakeFiles/bench_geodetic_index.dir/bench_geodetic_index.cpp.o"
  "CMakeFiles/bench_geodetic_index.dir/bench_geodetic_index.cpp.o.d"
  "bench_geodetic_index"
  "bench_geodetic_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geodetic_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
