# Empty compiler generated dependencies file for bench_geodetic_index.
# This may be replaced when dependencies are built.
