file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rrs.dir/bench_table1_rrs.cpp.o"
  "CMakeFiles/bench_table1_rrs.dir/bench_table1_rrs.cpp.o.d"
  "bench_table1_rrs"
  "bench_table1_rrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
