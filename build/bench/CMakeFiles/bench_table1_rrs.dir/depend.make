# Empty dependencies file for bench_table1_rrs.
# This may be replaced when dependencies are built.
