file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_vs_recursive.dir/bench_edge_vs_recursive.cpp.o"
  "CMakeFiles/bench_edge_vs_recursive.dir/bench_edge_vs_recursive.cpp.o.d"
  "bench_edge_vs_recursive"
  "bench_edge_vs_recursive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_vs_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
