# Empty compiler generated dependencies file for bench_edge_vs_recursive.
# This may be replaced when dependencies are built.
