file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_hilbert.dir/bench_fig4_hilbert.cpp.o"
  "CMakeFiles/bench_fig4_hilbert.dir/bench_fig4_hilbert.cpp.o.d"
  "bench_fig4_hilbert"
  "bench_fig4_hilbert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_hilbert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
