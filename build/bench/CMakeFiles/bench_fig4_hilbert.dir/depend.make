# Empty dependencies file for bench_fig4_hilbert.
# This may be replaced when dependencies are built.
