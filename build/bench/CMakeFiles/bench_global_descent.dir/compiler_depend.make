# Empty compiler generated dependencies file for bench_global_descent.
# This may be replaced when dependencies are built.
