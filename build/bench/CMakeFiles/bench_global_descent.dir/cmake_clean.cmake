file(REMOVE_RECURSE
  "CMakeFiles/bench_global_descent.dir/bench_global_descent.cpp.o"
  "CMakeFiles/bench_global_descent.dir/bench_global_descent.cpp.o.d"
  "bench_global_descent"
  "bench_global_descent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_global_descent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
