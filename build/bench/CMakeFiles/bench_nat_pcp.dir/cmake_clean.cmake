file(REMOVE_RECURSE
  "CMakeFiles/bench_nat_pcp.dir/bench_nat_pcp.cpp.o"
  "CMakeFiles/bench_nat_pcp.dir/bench_nat_pcp.cpp.o.d"
  "bench_nat_pcp"
  "bench_nat_pcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nat_pcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
