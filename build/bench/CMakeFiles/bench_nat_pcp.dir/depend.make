# Empty dependencies file for bench_nat_pcp.
# This may be replaced when dependencies are built.
