# Empty dependencies file for bench_discovery_latency.
# This may be replaced when dependencies are built.
