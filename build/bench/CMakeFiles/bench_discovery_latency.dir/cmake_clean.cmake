file(REMOVE_RECURSE
  "CMakeFiles/bench_discovery_latency.dir/bench_discovery_latency.cpp.o"
  "CMakeFiles/bench_discovery_latency.dir/bench_discovery_latency.cpp.o.d"
  "bench_discovery_latency"
  "bench_discovery_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discovery_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
