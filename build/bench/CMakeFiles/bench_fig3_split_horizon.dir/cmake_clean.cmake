file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_split_horizon.dir/bench_fig3_split_horizon.cpp.o"
  "CMakeFiles/bench_fig3_split_horizon.dir/bench_fig3_split_horizon.cpp.o.d"
  "bench_fig3_split_horizon"
  "bench_fig3_split_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_split_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
