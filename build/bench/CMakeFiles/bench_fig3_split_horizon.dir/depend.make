# Empty dependencies file for bench_fig3_split_horizon.
# This may be replaced when dependencies are built.
