# Empty dependencies file for test_loc.
# This may be replaced when dependencies are built.
