file(REMOVE_RECURSE
  "CMakeFiles/test_loc.dir/test_loc.cpp.o"
  "CMakeFiles/test_loc.dir/test_loc.cpp.o.d"
  "test_loc"
  "test_loc.pdb"
  "test_loc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
