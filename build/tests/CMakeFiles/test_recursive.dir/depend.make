# Empty dependencies file for test_recursive.
# This may be replaced when dependencies are built.
