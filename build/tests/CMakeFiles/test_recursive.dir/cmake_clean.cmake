file(REMOVE_RECURSE
  "CMakeFiles/test_recursive.dir/test_recursive.cpp.o"
  "CMakeFiles/test_recursive.dir/test_recursive.cpp.o.d"
  "test_recursive"
  "test_recursive.pdb"
  "test_recursive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
