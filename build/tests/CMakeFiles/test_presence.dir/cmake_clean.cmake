file(REMOVE_RECURSE
  "CMakeFiles/test_presence.dir/test_presence.cpp.o"
  "CMakeFiles/test_presence.dir/test_presence.cpp.o.d"
  "test_presence"
  "test_presence.pdb"
  "test_presence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_presence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
