# Empty dependencies file for test_presence.
# This may be replaced when dependencies are built.
