file(REMOVE_RECURSE
  "CMakeFiles/test_indexes.dir/test_indexes.cpp.o"
  "CMakeFiles/test_indexes.dir/test_indexes.cpp.o.d"
  "test_indexes"
  "test_indexes.pdb"
  "test_indexes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
