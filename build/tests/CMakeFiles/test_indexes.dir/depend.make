# Empty dependencies file for test_indexes.
# This may be replaced when dependencies are built.
