# Empty compiler generated dependencies file for test_selection_edns.
# This may be replaced when dependencies are built.
