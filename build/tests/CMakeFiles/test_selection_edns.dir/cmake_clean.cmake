file(REMOVE_RECURSE
  "CMakeFiles/test_selection_edns.dir/test_selection_edns.cpp.o"
  "CMakeFiles/test_selection_edns.dir/test_selection_edns.cpp.o.d"
  "test_selection_edns"
  "test_selection_edns.pdb"
  "test_selection_edns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selection_edns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
