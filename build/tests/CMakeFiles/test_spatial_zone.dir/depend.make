# Empty dependencies file for test_spatial_zone.
# This may be replaced when dependencies are built.
