file(REMOVE_RECURSE
  "CMakeFiles/test_spatial_zone.dir/test_spatial_zone.cpp.o"
  "CMakeFiles/test_spatial_zone.dir/test_spatial_zone.cpp.o.d"
  "test_spatial_zone"
  "test_spatial_zone.pdb"
  "test_spatial_zone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
