# Empty dependencies file for test_dnssec.
# This may be replaced when dependencies are built.
