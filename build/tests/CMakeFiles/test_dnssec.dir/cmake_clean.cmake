file(REMOVE_RECURSE
  "CMakeFiles/test_dnssec.dir/test_dnssec.cpp.o"
  "CMakeFiles/test_dnssec.dir/test_dnssec.cpp.o.d"
  "test_dnssec"
  "test_dnssec.pdb"
  "test_dnssec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnssec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
