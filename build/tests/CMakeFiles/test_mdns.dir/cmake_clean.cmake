file(REMOVE_RECURSE
  "CMakeFiles/test_mdns.dir/test_mdns.cpp.o"
  "CMakeFiles/test_mdns.dir/test_mdns.cpp.o.d"
  "test_mdns"
  "test_mdns.pdb"
  "test_mdns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
