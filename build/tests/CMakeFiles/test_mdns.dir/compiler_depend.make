# Empty compiler generated dependencies file for test_mdns.
# This may be replaced when dependencies are built.
