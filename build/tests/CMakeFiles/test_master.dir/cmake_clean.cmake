file(REMOVE_RECURSE
  "CMakeFiles/test_master.dir/test_master.cpp.o"
  "CMakeFiles/test_master.dir/test_master.cpp.o.d"
  "test_master"
  "test_master.pdb"
  "test_master[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
