# Empty compiler generated dependencies file for test_master.
# This may be replaced when dependencies are built.
