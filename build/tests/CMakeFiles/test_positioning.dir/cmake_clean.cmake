file(REMOVE_RECURSE
  "CMakeFiles/test_positioning.dir/test_positioning.cpp.o"
  "CMakeFiles/test_positioning.dir/test_positioning.cpp.o.d"
  "test_positioning"
  "test_positioning.pdb"
  "test_positioning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_positioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
