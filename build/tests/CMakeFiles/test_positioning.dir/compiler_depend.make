# Empty compiler generated dependencies file for test_positioning.
# This may be replaced when dependencies are built.
