file(REMOVE_RECURSE
  "CMakeFiles/test_geodetic.dir/test_geodetic.cpp.o"
  "CMakeFiles/test_geodetic.dir/test_geodetic.cpp.o.d"
  "test_geodetic"
  "test_geodetic.pdb"
  "test_geodetic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geodetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
