# Empty dependencies file for test_geodetic.
# This may be replaced when dependencies are built.
