
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_transfer.cpp" "tests/CMakeFiles/test_transfer.dir/test_transfer.cpp.o" "gcc" "tests/CMakeFiles/test_transfer.dir/test_transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/sns_server.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/sns_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/sns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/positioning/CMakeFiles/sns_positioning.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sns_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
