# Empty compiler generated dependencies file for test_civic_uri.
# This may be replaced when dependencies are built.
