file(REMOVE_RECURSE
  "CMakeFiles/test_civic_uri.dir/test_civic_uri.cpp.o"
  "CMakeFiles/test_civic_uri.dir/test_civic_uri.cpp.o.d"
  "test_civic_uri"
  "test_civic_uri.pdb"
  "test_civic_uri[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_civic_uri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
