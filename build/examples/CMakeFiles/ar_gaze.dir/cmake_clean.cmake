file(REMOVE_RECURSE
  "CMakeFiles/ar_gaze.dir/ar_gaze.cpp.o"
  "CMakeFiles/ar_gaze.dir/ar_gaze.cpp.o.d"
  "ar_gaze"
  "ar_gaze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ar_gaze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
