# Empty dependencies file for ar_gaze.
# This may be replaced when dependencies are built.
