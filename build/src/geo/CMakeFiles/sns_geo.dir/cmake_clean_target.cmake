file(REMOVE_RECURSE
  "libsns_geo.a"
)
