file(REMOVE_RECURSE
  "CMakeFiles/sns_geo.dir/geometry.cpp.o"
  "CMakeFiles/sns_geo.dir/geometry.cpp.o.d"
  "CMakeFiles/sns_geo.dir/hilbert.cpp.o"
  "CMakeFiles/sns_geo.dir/hilbert.cpp.o.d"
  "CMakeFiles/sns_geo.dir/hilbert_index.cpp.o"
  "CMakeFiles/sns_geo.dir/hilbert_index.cpp.o.d"
  "CMakeFiles/sns_geo.dir/naive_index.cpp.o"
  "CMakeFiles/sns_geo.dir/naive_index.cpp.o.d"
  "CMakeFiles/sns_geo.dir/quadtree.cpp.o"
  "CMakeFiles/sns_geo.dir/quadtree.cpp.o.d"
  "CMakeFiles/sns_geo.dir/rtree.cpp.o"
  "CMakeFiles/sns_geo.dir/rtree.cpp.o.d"
  "libsns_geo.a"
  "libsns_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
