
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/geometry.cpp" "src/geo/CMakeFiles/sns_geo.dir/geometry.cpp.o" "gcc" "src/geo/CMakeFiles/sns_geo.dir/geometry.cpp.o.d"
  "/root/repo/src/geo/hilbert.cpp" "src/geo/CMakeFiles/sns_geo.dir/hilbert.cpp.o" "gcc" "src/geo/CMakeFiles/sns_geo.dir/hilbert.cpp.o.d"
  "/root/repo/src/geo/hilbert_index.cpp" "src/geo/CMakeFiles/sns_geo.dir/hilbert_index.cpp.o" "gcc" "src/geo/CMakeFiles/sns_geo.dir/hilbert_index.cpp.o.d"
  "/root/repo/src/geo/naive_index.cpp" "src/geo/CMakeFiles/sns_geo.dir/naive_index.cpp.o" "gcc" "src/geo/CMakeFiles/sns_geo.dir/naive_index.cpp.o.d"
  "/root/repo/src/geo/quadtree.cpp" "src/geo/CMakeFiles/sns_geo.dir/quadtree.cpp.o" "gcc" "src/geo/CMakeFiles/sns_geo.dir/quadtree.cpp.o.d"
  "/root/repo/src/geo/rtree.cpp" "src/geo/CMakeFiles/sns_geo.dir/rtree.cpp.o" "gcc" "src/geo/CMakeFiles/sns_geo.dir/rtree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
