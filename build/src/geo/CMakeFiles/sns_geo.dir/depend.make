# Empty dependencies file for sns_geo.
# This may be replaced when dependencies are built.
