file(REMOVE_RECURSE
  "CMakeFiles/sns_net.dir/address.cpp.o"
  "CMakeFiles/sns_net.dir/address.cpp.o.d"
  "CMakeFiles/sns_net.dir/nat.cpp.o"
  "CMakeFiles/sns_net.dir/nat.cpp.o.d"
  "CMakeFiles/sns_net.dir/network.cpp.o"
  "CMakeFiles/sns_net.dir/network.cpp.o.d"
  "CMakeFiles/sns_net.dir/sim.cpp.o"
  "CMakeFiles/sns_net.dir/sim.cpp.o.d"
  "libsns_net.a"
  "libsns_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
