
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cpp" "src/net/CMakeFiles/sns_net.dir/address.cpp.o" "gcc" "src/net/CMakeFiles/sns_net.dir/address.cpp.o.d"
  "/root/repo/src/net/nat.cpp" "src/net/CMakeFiles/sns_net.dir/nat.cpp.o" "gcc" "src/net/CMakeFiles/sns_net.dir/nat.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/sns_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/sns_net.dir/network.cpp.o.d"
  "/root/repo/src/net/sim.cpp" "src/net/CMakeFiles/sns_net.dir/sim.cpp.o" "gcc" "src/net/CMakeFiles/sns_net.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
