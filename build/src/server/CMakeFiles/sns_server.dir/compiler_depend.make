# Empty compiler generated dependencies file for sns_server.
# This may be replaced when dependencies are built.
