
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/authoritative.cpp" "src/server/CMakeFiles/sns_server.dir/authoritative.cpp.o" "gcc" "src/server/CMakeFiles/sns_server.dir/authoritative.cpp.o.d"
  "/root/repo/src/server/mdns.cpp" "src/server/CMakeFiles/sns_server.dir/mdns.cpp.o" "gcc" "src/server/CMakeFiles/sns_server.dir/mdns.cpp.o.d"
  "/root/repo/src/server/transfer.cpp" "src/server/CMakeFiles/sns_server.dir/transfer.cpp.o" "gcc" "src/server/CMakeFiles/sns_server.dir/transfer.cpp.o.d"
  "/root/repo/src/server/update.cpp" "src/server/CMakeFiles/sns_server.dir/update.cpp.o" "gcc" "src/server/CMakeFiles/sns_server.dir/update.cpp.o.d"
  "/root/repo/src/server/zone.cpp" "src/server/CMakeFiles/sns_server.dir/zone.cpp.o" "gcc" "src/server/CMakeFiles/sns_server.dir/zone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/sns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
