file(REMOVE_RECURSE
  "libsns_server.a"
)
