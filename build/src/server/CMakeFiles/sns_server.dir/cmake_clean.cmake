file(REMOVE_RECURSE
  "CMakeFiles/sns_server.dir/authoritative.cpp.o"
  "CMakeFiles/sns_server.dir/authoritative.cpp.o.d"
  "CMakeFiles/sns_server.dir/mdns.cpp.o"
  "CMakeFiles/sns_server.dir/mdns.cpp.o.d"
  "CMakeFiles/sns_server.dir/transfer.cpp.o"
  "CMakeFiles/sns_server.dir/transfer.cpp.o.d"
  "CMakeFiles/sns_server.dir/update.cpp.o"
  "CMakeFiles/sns_server.dir/update.cpp.o.d"
  "CMakeFiles/sns_server.dir/zone.cpp.o"
  "CMakeFiles/sns_server.dir/zone.cpp.o.d"
  "libsns_server.a"
  "libsns_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
