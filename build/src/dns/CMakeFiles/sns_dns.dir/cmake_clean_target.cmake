file(REMOVE_RECURSE
  "libsns_dns.a"
)
