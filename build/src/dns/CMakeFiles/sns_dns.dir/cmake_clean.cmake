file(REMOVE_RECURSE
  "CMakeFiles/sns_dns.dir/dnssec.cpp.o"
  "CMakeFiles/sns_dns.dir/dnssec.cpp.o.d"
  "CMakeFiles/sns_dns.dir/loc.cpp.o"
  "CMakeFiles/sns_dns.dir/loc.cpp.o.d"
  "CMakeFiles/sns_dns.dir/master.cpp.o"
  "CMakeFiles/sns_dns.dir/master.cpp.o.d"
  "CMakeFiles/sns_dns.dir/message.cpp.o"
  "CMakeFiles/sns_dns.dir/message.cpp.o.d"
  "CMakeFiles/sns_dns.dir/name.cpp.o"
  "CMakeFiles/sns_dns.dir/name.cpp.o.d"
  "CMakeFiles/sns_dns.dir/rdata.cpp.o"
  "CMakeFiles/sns_dns.dir/rdata.cpp.o.d"
  "CMakeFiles/sns_dns.dir/record.cpp.o"
  "CMakeFiles/sns_dns.dir/record.cpp.o.d"
  "CMakeFiles/sns_dns.dir/type.cpp.o"
  "CMakeFiles/sns_dns.dir/type.cpp.o.d"
  "libsns_dns.a"
  "libsns_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
