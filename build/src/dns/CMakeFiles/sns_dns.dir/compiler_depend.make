# Empty compiler generated dependencies file for sns_dns.
# This may be replaced when dependencies are built.
