
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/dnssec.cpp" "src/dns/CMakeFiles/sns_dns.dir/dnssec.cpp.o" "gcc" "src/dns/CMakeFiles/sns_dns.dir/dnssec.cpp.o.d"
  "/root/repo/src/dns/loc.cpp" "src/dns/CMakeFiles/sns_dns.dir/loc.cpp.o" "gcc" "src/dns/CMakeFiles/sns_dns.dir/loc.cpp.o.d"
  "/root/repo/src/dns/master.cpp" "src/dns/CMakeFiles/sns_dns.dir/master.cpp.o" "gcc" "src/dns/CMakeFiles/sns_dns.dir/master.cpp.o.d"
  "/root/repo/src/dns/message.cpp" "src/dns/CMakeFiles/sns_dns.dir/message.cpp.o" "gcc" "src/dns/CMakeFiles/sns_dns.dir/message.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/dns/CMakeFiles/sns_dns.dir/name.cpp.o" "gcc" "src/dns/CMakeFiles/sns_dns.dir/name.cpp.o.d"
  "/root/repo/src/dns/rdata.cpp" "src/dns/CMakeFiles/sns_dns.dir/rdata.cpp.o" "gcc" "src/dns/CMakeFiles/sns_dns.dir/rdata.cpp.o.d"
  "/root/repo/src/dns/record.cpp" "src/dns/CMakeFiles/sns_dns.dir/record.cpp.o" "gcc" "src/dns/CMakeFiles/sns_dns.dir/record.cpp.o.d"
  "/root/repo/src/dns/type.cpp" "src/dns/CMakeFiles/sns_dns.dir/type.cpp.o" "gcc" "src/dns/CMakeFiles/sns_dns.dir/type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sns_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
