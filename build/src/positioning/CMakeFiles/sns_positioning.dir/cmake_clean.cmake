file(REMOVE_RECURSE
  "CMakeFiles/sns_positioning.dir/gnss.cpp.o"
  "CMakeFiles/sns_positioning.dir/gnss.cpp.o.d"
  "CMakeFiles/sns_positioning.dir/ips.cpp.o"
  "CMakeFiles/sns_positioning.dir/ips.cpp.o.d"
  "libsns_positioning.a"
  "libsns_positioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_positioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
