file(REMOVE_RECURSE
  "libsns_positioning.a"
)
