
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/positioning/gnss.cpp" "src/positioning/CMakeFiles/sns_positioning.dir/gnss.cpp.o" "gcc" "src/positioning/CMakeFiles/sns_positioning.dir/gnss.cpp.o.d"
  "/root/repo/src/positioning/ips.cpp" "src/positioning/CMakeFiles/sns_positioning.dir/ips.cpp.o" "gcc" "src/positioning/CMakeFiles/sns_positioning.dir/ips.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/sns_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
