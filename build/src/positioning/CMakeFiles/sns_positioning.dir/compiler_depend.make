# Empty compiler generated dependencies file for sns_positioning.
# This may be replaced when dependencies are built.
