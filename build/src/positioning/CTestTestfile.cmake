# CMake generated Testfile for 
# Source directory: /root/repo/src/positioning
# Build directory: /root/repo/build/src/positioning
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
