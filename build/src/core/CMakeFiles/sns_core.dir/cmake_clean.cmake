file(REMOVE_RECURSE
  "CMakeFiles/sns_core.dir/civic.cpp.o"
  "CMakeFiles/sns_core.dir/civic.cpp.o.d"
  "CMakeFiles/sns_core.dir/deployment.cpp.o"
  "CMakeFiles/sns_core.dir/deployment.cpp.o.d"
  "CMakeFiles/sns_core.dir/geodetic.cpp.o"
  "CMakeFiles/sns_core.dir/geodetic.cpp.o.d"
  "CMakeFiles/sns_core.dir/mobility.cpp.o"
  "CMakeFiles/sns_core.dir/mobility.cpp.o.d"
  "CMakeFiles/sns_core.dir/presence.cpp.o"
  "CMakeFiles/sns_core.dir/presence.cpp.o.d"
  "CMakeFiles/sns_core.dir/selection.cpp.o"
  "CMakeFiles/sns_core.dir/selection.cpp.o.d"
  "CMakeFiles/sns_core.dir/spatial_zone.cpp.o"
  "CMakeFiles/sns_core.dir/spatial_zone.cpp.o.d"
  "CMakeFiles/sns_core.dir/uri.cpp.o"
  "CMakeFiles/sns_core.dir/uri.cpp.o.d"
  "libsns_core.a"
  "libsns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
