file(REMOVE_RECURSE
  "CMakeFiles/sns_util.dir/bytes.cpp.o"
  "CMakeFiles/sns_util.dir/bytes.cpp.o.d"
  "CMakeFiles/sns_util.dir/log.cpp.o"
  "CMakeFiles/sns_util.dir/log.cpp.o.d"
  "CMakeFiles/sns_util.dir/sha1.cpp.o"
  "CMakeFiles/sns_util.dir/sha1.cpp.o.d"
  "CMakeFiles/sns_util.dir/strings.cpp.o"
  "CMakeFiles/sns_util.dir/strings.cpp.o.d"
  "libsns_util.a"
  "libsns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
