
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/browse.cpp" "src/resolver/CMakeFiles/sns_resolver.dir/browse.cpp.o" "gcc" "src/resolver/CMakeFiles/sns_resolver.dir/browse.cpp.o.d"
  "/root/repo/src/resolver/cache.cpp" "src/resolver/CMakeFiles/sns_resolver.dir/cache.cpp.o" "gcc" "src/resolver/CMakeFiles/sns_resolver.dir/cache.cpp.o.d"
  "/root/repo/src/resolver/iterative.cpp" "src/resolver/CMakeFiles/sns_resolver.dir/iterative.cpp.o" "gcc" "src/resolver/CMakeFiles/sns_resolver.dir/iterative.cpp.o.d"
  "/root/repo/src/resolver/recursive.cpp" "src/resolver/CMakeFiles/sns_resolver.dir/recursive.cpp.o" "gcc" "src/resolver/CMakeFiles/sns_resolver.dir/recursive.cpp.o.d"
  "/root/repo/src/resolver/stub.cpp" "src/resolver/CMakeFiles/sns_resolver.dir/stub.cpp.o" "gcc" "src/resolver/CMakeFiles/sns_resolver.dir/stub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/sns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
