# Empty compiler generated dependencies file for sns_resolver.
# This may be replaced when dependencies are built.
