file(REMOVE_RECURSE
  "libsns_resolver.a"
)
