file(REMOVE_RECURSE
  "CMakeFiles/sns_resolver.dir/browse.cpp.o"
  "CMakeFiles/sns_resolver.dir/browse.cpp.o.d"
  "CMakeFiles/sns_resolver.dir/cache.cpp.o"
  "CMakeFiles/sns_resolver.dir/cache.cpp.o.d"
  "CMakeFiles/sns_resolver.dir/iterative.cpp.o"
  "CMakeFiles/sns_resolver.dir/iterative.cpp.o.d"
  "CMakeFiles/sns_resolver.dir/recursive.cpp.o"
  "CMakeFiles/sns_resolver.dir/recursive.cpp.o.d"
  "CMakeFiles/sns_resolver.dir/stub.cpp.o"
  "CMakeFiles/sns_resolver.dir/stub.cpp.o.d"
  "libsns_resolver.a"
  "libsns_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
